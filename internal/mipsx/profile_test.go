package mipsx

import (
	"strings"
	"testing"
)

// buildProfileProg assembles a program with a prelude (code at address 0,
// where any label is folded into the "(prelude)" bucket), a function with
// two labels at the same address, and a second function called from the
// first.
func buildProfileProg(t *testing.T) *Program {
	t.Helper()
	a := NewAsm()
	start := a.NewLabel("__start")
	alpha := a.NewLabel("fn:alpha")
	zeta := a.NewLabel("fn:zeta") // alias of fn:alpha (same address)
	beta := a.NewLabel("fn:beta")
	loop := a.NewLabel("loop") // not a function label
	a.Bind(start)
	a.Li(10, 0)
	a.Li(13, 0)
	a.Bind(loop)
	a.Addi(13, 13, 1)
	a.Blti(13, 5, loop)
	a.Jal(alpha)
	a.Halt()
	a.Bind(alpha)
	a.Bind(zeta)
	a.Mov(20, 31) // save return address around the inner call
	a.Jal(beta)
	a.Addi(10, 10, 1)
	a.Jr(20)
	a.Bind(beta)
	a.Addi(10, 10, 10)
	a.Jr(31)
	p, err := a.Finish("__start")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileRegions(t *testing.T) {
	p := buildProfileProg(t)
	prof := NewProfile(p, IsFunctionLabel)

	// __start sits at address 0, so it folds into "(prelude)"; "loop" is
	// rejected by the keep predicate; fn:zeta shares fn:alpha's address.
	want := []string{"(prelude)", "fn:alpha", "fn:beta"}
	if prof.NumRegions() != len(want) {
		t.Fatalf("NumRegions = %d, want %d", prof.NumRegions(), len(want))
	}
	for i, name := range want {
		if got := prof.RegionName(i); got != name {
			t.Errorf("RegionName(%d) = %q, want %q", i, got, name)
		}
	}

	// Every instruction from a region's label up to the next label belongs
	// to that region.
	if r := prof.RegionOf(0); r != 0 {
		t.Errorf("RegionOf(0) = %d, want 0 (prelude)", r)
	}
	if r := prof.RegionOf(p.Labels["fn:alpha"]); prof.RegionName(r) != "fn:alpha" {
		t.Errorf("fn:alpha entry attributed to %q", prof.RegionName(r))
	}
	if r := prof.RegionOf(p.Labels["fn:beta"]); prof.RegionName(r) != "fn:beta" {
		t.Errorf("fn:beta entry attributed to %q", prof.RegionName(r))
	}
	if r := prof.RegionOf(p.Labels["fn:beta"] - 1); prof.RegionName(r) != "fn:alpha" {
		t.Errorf("last fn:alpha instruction attributed to %q", prof.RegionName(r))
	}
	if prof.RegionOf(-1) != -1 || prof.RegionOf(len(p.Instrs)) != -1 {
		t.Error("RegionOf outside the program should be -1")
	}
}

// TestProfileMultiLabelDeterministic pins the tie-break at a shared
// address: the lexicographically smallest name wins, independent of map
// iteration order.
func TestProfileMultiLabelDeterministic(t *testing.T) {
	p := buildProfileProg(t)
	for i := 0; i < 32; i++ {
		prof := NewProfile(p, IsFunctionLabel)
		r := prof.RegionOf(p.Labels["fn:zeta"])
		if got := prof.RegionName(r); got != "fn:alpha" {
			t.Fatalf("iteration %d: shared-address region named %q, want fn:alpha", i, got)
		}
	}
}

func TestProfileKeepNil(t *testing.T) {
	p := buildProfileProg(t)
	prof := NewProfile(p, nil)
	// nil keeps every label, so "loop" becomes a region too.
	found := false
	for i := 0; i < prof.NumRegions(); i++ {
		if prof.RegionName(i) == "loop" {
			found = true
		}
	}
	if !found {
		t.Error("keep=nil should retain the non-function label \"loop\"")
	}
}

func TestRunProfiledAttribution(t *testing.T) {
	p := buildProfileProg(t)
	prof := NewProfile(p, IsFunctionLabel)
	m := NewMachine(p, 1024, HWConfig{TrapHandler: -1, CheckFailHandler: -1})
	m.MaxCycles = 1_000_000
	if err := m.RunProfiled(prof); err != nil {
		t.Fatal(err)
	}
	if m.Regs[10] != 11 {
		t.Fatalf("program computed %d, want 11", m.Regs[10])
	}
	var sum uint64
	for _, c := range prof.Cycles {
		sum += c
	}
	if sum != m.Stats.Cycles {
		t.Errorf("profile cycles sum %d, want Stats.Cycles %d", sum, m.Stats.Cycles)
	}
	for _, name := range []string{"(prelude)", "fn:alpha", "fn:beta"} {
		hit := false
		for i := 0; i < prof.NumRegions(); i++ {
			if prof.RegionName(i) == name && prof.Cycles[i] > 0 {
				hit = true
			}
		}
		if !hit {
			t.Errorf("region %q received no cycles", name)
		}
	}

	top := prof.Top(0)
	for i := 1; i < len(top); i++ {
		if top[i].Cycles > top[i-1].Cycles {
			t.Errorf("Top not sorted: %v", top)
		}
	}
	if got := prof.Top(1); len(got) != 1 {
		t.Errorf("Top(1) returned %d entries", len(got))
	}
	text := prof.Format(10, m.Stats.Cycles)
	if !strings.Contains(text, "(prelude)") {
		t.Errorf("Format output missing prelude bucket:\n%s", text)
	}
}

func TestIsFunctionLabel(t *testing.T) {
	for name, want := range map[string]bool{
		"fn:rewrite": true,
		"sys:gc":     true,
		"__start":    true,
		"loop":       false,
		"err3":       false,
		"":           false,
	} {
		if got := IsFunctionLabel(name); got != want {
			t.Errorf("IsFunctionLabel(%q) = %v, want %v", name, got, want)
		}
	}
}
