package mipsx

import (
	"fmt"
	"sort"
	"strings"
)

// Profile attributes executed cycles to code regions delimited by named
// labels — with the compiler's "fn:" naming convention, to functions.
type Profile struct {
	names    []string
	starts   []int
	regionOf []uint16
	Cycles   []uint64
}

// NewProfile builds a profile map over prog from the labels accepted by
// keep (nil keeps every named label).
func NewProfile(prog *Program, keep func(name string) bool) *Profile {
	type region struct {
		start int
		name  string
	}
	var regions []region
	for name, idx := range prog.Labels {
		if name == "" {
			continue
		}
		if keep != nil && !keep(name) {
			continue
		}
		regions = append(regions, region{start: idx, name: name})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].start < regions[j].start })
	p := &Profile{regionOf: make([]uint16, len(prog.Instrs))}
	p.names = append(p.names, "(prelude)")
	p.starts = append(p.starts, 0)
	for _, r := range regions {
		if r.start == p.starts[len(p.starts)-1] {
			// Several labels at one address: keep the first name.
			continue
		}
		p.names = append(p.names, r.name)
		p.starts = append(p.starts, r.start)
	}
	p.Cycles = make([]uint64, len(p.names))
	cur := 0
	for i := range p.regionOf {
		for cur+1 < len(p.starts) && p.starts[cur+1] <= i {
			cur++
		}
		p.regionOf[i] = uint16(cur)
	}
	return p
}

func (p *Profile) add(pc int, cycles uint64) {
	if pc >= 0 && pc < len(p.regionOf) {
		p.Cycles[p.regionOf[pc]] += cycles
	}
}

// Entry is one profile row.
type Entry struct {
	Name   string
	Cycles uint64
}

// Top returns the n hottest regions.
func (p *Profile) Top(n int) []Entry {
	out := make([]Entry, 0, len(p.names))
	for i, name := range p.names {
		if p.Cycles[i] > 0 {
			out = append(out, Entry{Name: name, Cycles: p.Cycles[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Format renders the top-n table against a cycle total.
func (p *Profile) Format(n int, total uint64) string {
	var sb strings.Builder
	for _, e := range p.Top(n) {
		fmt.Fprintf(&sb, "  %-32s %12d  %6.2f%%\n", e.Name, e.Cycles, Pct(e.Cycles, total))
	}
	return sb.String()
}

// RunProfiled is Run with per-region cycle attribution into prof.
func (m *Machine) RunProfiled(prof *Profile) error {
	for !m.halted {
		pc := m.PC
		before := m.Stats.Cycles
		if err := m.Step(); err != nil {
			return err
		}
		prof.add(pc, m.Stats.Cycles-before)
		if m.MaxCycles != 0 && m.Stats.Cycles > m.MaxCycles {
			return m.fault("cycle limit %d exceeded", m.MaxCycles)
		}
	}
	if m.Stats.ErrorCode != 0 {
		return &RuntimeError{Code: m.Stats.ErrorCode, Item: m.Stats.ErrorItem}
	}
	return nil
}
