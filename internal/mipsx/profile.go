package mipsx

import (
	"fmt"
	"sort"
	"strings"
)

// Profile attributes executed cycles to code regions delimited by named
// labels — with the compiler's "fn:" naming convention, to functions.
type Profile struct {
	names    []string
	starts   []int
	regionOf []uint16
	Cycles   []uint64
}

// NewProfile builds a profile map over prog from the labels accepted by
// keep (nil keeps every named label).
func NewProfile(prog *Program, keep func(name string) bool) *Profile {
	type region struct {
		start int
		name  string
	}
	var regions []region
	for name, idx := range prog.Labels {
		if name == "" {
			continue
		}
		if keep != nil && !keep(name) {
			continue
		}
		regions = append(regions, region{start: idx, name: name})
	}
	// Sort by (start, name) so the region map is deterministic: when
	// several labels share an address, the lexicographically smallest name
	// wins regardless of map iteration order.
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].start != regions[j].start {
			return regions[i].start < regions[j].start
		}
		return regions[i].name < regions[j].name
	})
	p := &Profile{regionOf: make([]uint16, len(prog.Instrs))}
	p.names = append(p.names, "(prelude)")
	p.starts = append(p.starts, 0)
	for _, r := range regions {
		if r.start == p.starts[len(p.starts)-1] {
			// Several labels at one address: keep the first name.
			continue
		}
		p.names = append(p.names, r.name)
		p.starts = append(p.starts, r.start)
	}
	p.Cycles = make([]uint64, len(p.names))
	cur := 0
	for i := range p.regionOf {
		for cur+1 < len(p.starts) && p.starts[cur+1] <= i {
			cur++
		}
		p.regionOf[i] = uint16(cur)
	}
	return p
}

func (p *Profile) add(pc int, cycles uint64) {
	if pc >= 0 && pc < len(p.regionOf) {
		p.Cycles[p.regionOf[pc]] += cycles
	}
}

// NumRegions returns the number of regions, including the "(prelude)"
// bucket that covers code before the first kept label.
func (p *Profile) NumRegions() int { return len(p.names) }

// RegionName returns the name of region i.
func (p *Profile) RegionName(i int) string { return p.names[i] }

// RegionOf returns the region index covering instruction index pc, or -1
// when pc is outside the program.
func (p *Profile) RegionOf(pc int) int {
	if pc < 0 || pc >= len(p.regionOf) {
		return -1
	}
	return int(p.regionOf[pc])
}

// IsFunctionLabel reports whether a label names a function-level region
// under the compiler's conventions: compiled functions ("fn:"), runtime
// glue ("sys:"), and the image entry point. It is the keep predicate the
// profiler and the call tracer share.
func IsFunctionLabel(name string) bool {
	return strings.HasPrefix(name, "fn:") || strings.HasPrefix(name, "sys:") ||
		name == "__start"
}

// Entry is one profile row.
type Entry struct {
	Name   string
	Cycles uint64
}

// Top returns the n hottest regions.
func (p *Profile) Top(n int) []Entry {
	out := make([]Entry, 0, len(p.names))
	for i, name := range p.names {
		if p.Cycles[i] > 0 {
			out = append(out, Entry{Name: name, Cycles: p.Cycles[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Format renders the top-n table against a cycle total.
func (p *Profile) Format(n int, total uint64) string {
	var sb strings.Builder
	for _, e := range p.Top(n) {
		fmt.Fprintf(&sb, "  %-32s %12d  %6.2f%%\n", e.Name, e.Cycles, Pct(e.Cycles, total))
	}
	return sb.String()
}

// RunProfiled is Run with per-region cycle attribution into prof.
func (m *Machine) RunProfiled(prof *Profile) error {
	for !m.halted {
		pc := m.PC
		before := m.Stats.Cycles
		if err := m.Step(); err != nil {
			return err
		}
		prof.add(pc, m.Stats.Cycles-before)
		if m.MaxCycles != 0 && m.Stats.Cycles > m.MaxCycles {
			return m.fault("cycle limit %d exceeded", m.MaxCycles)
		}
	}
	if m.Stats.ErrorCode != 0 {
		return &RuntimeError{Code: m.Stats.ErrorCode, Item: m.Stats.ErrorItem}
	}
	return nil
}
