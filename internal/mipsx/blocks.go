package mipsx

// Basic-block translation (the discovery/translation half of the block
// engine; the execution loop lives in translate.go).
//
// A translated block covers one straight-line run of the predecoded
// stream: a body of non-control instructions followed by a terminator (a
// branch or jump with its two delay slots, a SYS, a HALT, or a plain fall
// into the next block when the body cap is reached). Blocks are discovered
// lazily at the program counters execution actually reaches — every branch
// target or fallthrough that runs becomes a block leader — and may overlap:
// jumping into what is usually a delay slot simply starts a block whose
// leader is that slot instruction, with the same semantics the reference
// engine gives it.
//
// The body's accounting is fully static. Cycle costs come from the
// predecoded stream, and the load-delay interlock is a register-number
// comparison between a load and its textual successor, so body cycles and
// stall attribution are computed once at translation time and one block
// execution charges them with two additions. Delay-slot accounting is
// static per branch outcome (taken, fall-through, annulled), including the
// slot-2 load interlock against the first instruction at the branch
// target. Only indirect jumps (JALR/JR) leave a stall test for run time.
//
// Recurring tag idioms in the body are peephole-fused into
// superinstructions dispatched as one step: SRLI+ANDI (tag extract),
// SLLI+ORI (tag insert), ANDI+LD and ADDI+LD (tag removal or address
// arithmetic folded into the load), MOV+MOV (argument shuffles), a census
// of other frequent pairs, and register save/restore runs of three or four
// consecutive spills or reloads. All destination writes are performed in
// textual order, so architectural state stays bit-identical to the
// reference engine's.

import (
	"sync/atomic"
	"time"
)

// bodyCap bounds a block body so pathological straight-line programs do
// not produce unbounded translations; the block falls through (and chains)
// to its successor.
const bodyCap = 64

// Fused superinstruction step kinds. Single-instruction steps reuse the Op
// value as their kind, so fused kinds start above every opcode. The tag
// idioms came first (extract, insert, strip-into-load); the rest were
// picked from a dynamic census of adjacent-pair frequencies on the ten PSL
// workloads (spill/reload and argument-shuffle traffic dominates). A pair
// with a NOP on either side needs no kind of its own: fusePair elides the
// NOP and the surviving instruction's step covers both source pcs.
const (
	kSrliAndi uint8 = 64 + iota // tag extract: shift then mask
	kSlliOri                    // tag insert: shift then or
	kMovMov                     // register shuffle pair
	kAndiLd                     // tag removal folded into the load
	kAddiLd                     // address arithmetic folded into the load
	kLdLd                       // reload pair
	kStSt                       // spill pair
	kMovLd                      // shuffle + reload
	kLdMov                      // reload + shuffle
	kLdSt                       // reload + spill
	kStLd                       // spill + reload
	kStMov                      // spill + shuffle
	kMovSt                      // shuffle + spill
	kAddiSt                     // address arithmetic folded into the store
	kLdSrli                     // reload + tag shift
	kMovSrli                    // shuffle + tag shift
	kLdAddi                     // reload + address arithmetic
	kStLi                       // spill + constant
	kLiOr                       // constant + or (tag assembly)
	kOrAddi                     // or + address arithmetic
	kSlliSrai                   // sign-extension pair
	kLd3                        // register-restore run: three consecutive reloads
	kLd4                        // register-restore run: four consecutive reloads
	kSt3                        // register-save run: three consecutive spills
	kSt4                        // register-save run: four consecutive spills
	kMov3                       // register shuffle triple (second-level fusion)
	kMov4                       // register shuffle quad (second-level fusion)
)

// Superblock-stream kinds, produced only by the dataflow pass over formed
// superblocks (never in shared block bodies), numbered above the edge
// kinds. kAndLd is the untag-and-load shape the pass exposes by fusing
// across former block boundaries; the *NC kinds are checked accesses whose
// tag or granule check an earlier identical check proved redundant — they
// keep the access's masking and fault semantics bit-identical and skip
// only the check itself.
const (
	kAndLd uint8 = 113 + iota // register untag (and) folded into the load
	kLdcNC                    // LDC with a provably redundant tag check elided
	kStcNC                    // STC with a provably redundant tag check elided
	kLdmNC                    // LDM with a provably redundant granule check elided
	kStmNC                    // STM with a provably redundant granule check elided
)

// Compile-time guard: opcode values must stay below the fused-kind space.
const _opsFitBelowFusedKinds = uint(64 - int(numOps))

// RScratch indexes the scratch slot just past the architectural register
// file in the translated engine's working array; destination register 0 is
// remapped here at translation time (see zdst).
const RScratch = 32

// tstep is one dispatch step of a block body: a single instruction, a
// fused pair, or a save/restore run, executed with no per-instruction
// bookkeeping.
//
// Field conventions: a single instruction uses rd/rs1/rs2/tag/imm as
// decoded (rd through the zero-destination remap). A fused pair maps its
// first instruction to rd/rs1/rs2/imm and its second to rd2/rs3/tag/imm2
// (tag is the second instruction's rs2 — no fused kind carries a real
// tag). A save/restore run keeps the base in rs1 and the first offset in
// imm, and packs its element registers a byte apiece into imm2. A mov run
// (kMov3/kMov4) holds its copies in order as rd←rs1, rd2←rs3, rs2←tag,
// and a fourth pair packed into imm's low bytes (dst, then src at bit 8).
// ADDTC/SUBTC single steps repurpose tag for the pre-remap rd, which the
// trap mailbox records.
type tstep struct {
	kind uint8
	n    uint8 // source instructions covered, swallowed trailing NOPs included
	rd   uint8
	rs1  uint8
	rs2  uint8
	tag  uint8
	// Second instruction of a fused pair.
	rd2  uint8
	rs3  uint8
	imm  int32
	imm2 int32
	off  int32 // source pc of the step's first instruction
}

// stallRec attributes one static load-interlock stall cycle.
type stallRec struct {
	cat     Category
	sub     SubCat
	rtCheck bool
}

// outcome is the static accounting of one branch direction: total cycles
// (branch, slots, slot stalls), the portion the fused engine has charged
// when it performs its cycle-limit check, stall attributions, and where
// execution continues.
type outcome struct {
	cyc      uint64
	checkCyc uint64
	stalls   []stallRec
	nextPC   int32
	annul    bool   // squashing branch not taken: slots are annulled
	s2wmask  uint32 // slot-2 load interlock mask, peeked at run time (indirect targets only)
}

// Terminator kinds.
const (
	termFall    uint8 = iota // fall into the next block (body cap or end of stream)
	termHalt                 // HALT
	termSys                  // SYS, handled inline
	termCond                 // conditional branch, slots executed inline
	termJump                 // JMP/JAL, slots executed inline
	termJumpInd              // JALR/JR, slots executed inline
	termInterp               // control transfer whose slots need the reference stepper
)

// tterm is a block's terminator.
type tterm struct {
	kind     uint8
	op       Op
	rs1      uint8
	rs2      uint8
	tag      uint8
	link     bool // JAL/JALR write the return address
	slotsNop bool
	imm      int32
	pc       int32 // source pc of the terminator (termFall: first pc past the block)
	target   int32
	slot1    *decoded
	slot2    *decoded
	// The delay slots precompiled into dispatch steps (never fused, so a
	// slot fault attributes to the right source pc), executed by the same
	// dispatch loop as block bodies. Valid for termCond/termJump/termJumpInd
	// terminators whose slots are not both NOPs.
	slots [2]tstep
	taken outcome
	fall  outcome
	// Chain pointers: the successor blocks for the taken and
	// fall-through/unconditional edges, filled on first use so steady-state
	// control flow never consults the PC-keyed table. Shared across
	// machines (the cache is per Program), hence atomic.
	tnext atomic.Pointer[tblock]
	fnext atomic.Pointer[tblock]
	// Inline target cache for indirect jumps (termJumpInd): the last
	// computed target and its block, so monomorphic call sites skip the
	// PC-keyed table. Target pc and block must be read as a consistent
	// pair, hence one atomic pointer to an immutable entry.
	icache atomic.Pointer[icacheEnt]
}

// icacheEnt is an immutable indirect-jump target cache entry.
type icacheEnt struct {
	pc int32
	b  *tblock
}

// tblock is one translated basic block. id densely numbers the program's
// blocks in translation order; per-machine execution counters are indexed
// by it (a few cache lines for a whole program, where per-pc counters
// would sprawl).
type tblock struct {
	id         int32
	start      int32
	bodyLen    int32 // source instructions covered by the body
	bodyCyc    uint64
	fusedN     uint64
	steps      []tstep
	bodyStalls []stallRec
	term       tterm
	// nat is the block's native (closure-threaded) compilation, built
	// lazily under the program's tmu (see nclosure.go).
	nat atomic.Pointer[nblock]
}

// blockCtr is one machine's execution counters for one block: body
// executions, taken-terminator executions and fall-through-terminator
// executions since the last flush, expanded into per-instruction
// statistics on exit (see translate.go).
type blockCtr struct {
	body, taken, fall uint64
}

// initTranslation prepares the program's block cache.
func (p *Program) initTranslation() {
	p.tonce.Do(func() {
		p.predecode()
		p.tblocks = make([]atomic.Pointer[tblock], len(p.dec))
	})
}

// blockAt returns the block starting at pc, translating and publishing it
// on first use. A nil block means pc is outside the instruction stream.
// The second result reports whether this call performed the translation.
func (p *Program) blockAt(pc int) (*tblock, bool) {
	if uint(pc) >= uint(len(p.tblocks)) {
		return nil, false
	}
	if b := p.tblocks[pc].Load(); b != nil {
		return b, false
	}
	p.tmu.Lock()
	defer p.tmu.Unlock()
	if b := p.tblocks[pc].Load(); b != nil {
		return b, false
	}
	t0 := time.Now()
	defer func() { p.transNS.Add(time.Since(t0).Nanoseconds()) }()
	b := p.translate(pc)
	var old []*tblock
	if lp := p.blist.Load(); lp != nil {
		old = *lp
	}
	b.id = int32(len(old))
	list := make([]*tblock, len(old)+1)
	copy(list, old)
	list[len(old)] = b
	p.blist.Store(&list)
	p.tblocks[pc].Store(b)
	return b, true
}

// translate builds the block with leader pc.
func (p *Program) translate(start int) *tblock {
	dec := p.dec
	b := &tblock{start: int32(start)}
	i := start
	for i < len(dec) && i-start < bodyCap {
		op := dec[i].op
		if op.IsControl() || op == SYS || op == HALT {
			break
		}
		i++
	}
	b.bodyLen = int32(i - start)
	for j := start; j < i; j++ {
		d := &dec[j]
		b.bodyCyc += uint64(d.cycles)
		if d.op.IsLoad() && j+1 < len(dec) && dec[j+1].readMask&d.wmask != 0 {
			b.bodyCyc++
			b.bodyStalls = append(b.bodyStalls, stallRec{d.cat, d.sub, d.rtCheck})
		}
	}
	b.steps = fuseSteps(dec, start, i)
	for k := range b.steps {
		if b.steps[k].n >= 2 {
			b.fusedN++
		}
	}
	p.buildTerm(b, i)
	return b
}

// zdst remaps destination register 0 to the scratch slot past the
// architectural file (RScratch): writes to the hardwired zero are discarded
// by construction, so the dispatch loop needs no per-step zero restore.
func zdst(x uint8) uint8 {
	x &= 31
	if x == 0 {
		return RScratch
	}
	return x
}

// singleStep compiles one instruction into an unfused dispatch step.
// ADDTC/SUBTC repurpose the (otherwise unused) tag field to carry the
// original destination register number for the trap mailbox, since rd has
// been through the zero-destination remap.
func singleStep(d *decoded, pc int) tstep {
	s := tstep{
		kind: uint8(d.op), n: 1,
		rd: zdst(d.rd), rs1: d.rs1 & 31, rs2: d.rs2 & 31,
		tag: d.tag, imm: d.imm, off: int32(pc),
	}
	if d.op == ADDTC || d.op == SUBTC {
		s.tag = d.rd & 31
	}
	return s
}

// fuseSteps packs the body instructions of [start, end) into dispatch
// steps: save/restore runs first (they cover the most instructions per
// dispatch), then recognized idiom pairs, then singles. Trailing NOPs are
// swallowed into whichever step precedes them — they have no effect, so
// the step's n simply covers them and dispatch skips them entirely.
func fuseSteps(dec []decoded, start, end int) []tstep {
	steps := make([]tstep, 0, end-start)
	for i := start; i < end; {
		var s tstep
		if n := memRunLen(dec, i, end); n >= 3 {
			s = memRunStep(dec, i, n)
		} else if i+1 < end {
			var ok bool
			if s, ok = fusePair(&dec[i], &dec[i+1], i); !ok {
				s = singleStep(&dec[i], i)
			}
		} else {
			s = singleStep(&dec[i], i)
		}
		for j := i + int(s.n); j < end && dec[j].op == NOP; j++ {
			s.n++
		}
		steps = append(steps, s)
		i += int(s.n)
	}
	return fuseMovRuns(steps)
}

// fuseMovRuns is the second-level fusion pass: argument-shuffle code leaves
// long runs of MOVs that the pair fuser turns into adjacent kMovMov steps,
// and this pass merges each adjacent kMovMov+kMovMov into one kMov4 step
// (and a kMovMov next to a lone MOV into kMov3), halving the dispatches the
// hottest shuffle sequences cost. MOVs cannot fault, so merging never
// changes fault attribution; the merged step's n covers every source
// instruction (swallowed NOPs included) of both halves.
func fuseMovRuns(steps []tstep) []tstep {
	out := steps[:0]
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if i+1 < len(steps) {
			t := &steps[i+1]
			switch {
			case s.kind == kMovMov && t.kind == kMovMov:
				s.kind = kMov4
				s.rs2, s.tag = t.rd, t.rs1
				s.imm = int32(uint32(t.rd2) | uint32(t.rs3)<<8)
				s.n += t.n
				i++
			case s.kind == kMovMov && t.kind == uint8(MOV):
				s.kind = kMov3
				s.rs2, s.tag = t.rd, t.rs1
				s.n += t.n
				i++
			case s.kind == uint8(MOV) && t.kind == kMovMov:
				s.kind = kMov3
				s.rd2, s.rs3 = t.rd, t.rs1
				s.rs2, s.tag = t.rd2, t.rs3
				s.n += t.n
				i++
			}
		}
		out = append(out, s)
	}
	return out
}

// memRunLen measures the register save/restore run starting at i: three or
// four consecutive LDs or STs off the same base register at consecutive
// word offsets — the shape spill and reload bursts take at call
// boundaries. A reload run must not clobber its base before its last
// element (the run's precomputed element addresses would go stale).
func memRunLen(dec []decoded, i, end int) int {
	op := dec[i].op
	if op != LD && op != ST {
		return 0
	}
	base, imm := dec[i].rs1&31, dec[i].imm
	n := 1
	for n < 4 && i+n < end {
		d := &dec[i+n]
		if d.op != op || d.rs1&31 != base || d.imm != imm+int32(4*n) {
			break
		}
		if op == LD && dec[i+n-1].rd&31 == base {
			break
		}
		n++
	}
	if n < 3 {
		return 0
	}
	return n
}

// memRunStep packs a save/restore run of n elements into one step: base in
// rs1, first offset in imm, and the element registers (value sources for a
// save, remapped destinations for a restore) packed a byte apiece into
// imm2, element k at bits 8k.
func memRunStep(dec []decoded, i, n int) tstep {
	d := &dec[i]
	s := tstep{n: uint8(n), rs1: d.rs1 & 31, imm: d.imm, off: int32(i)}
	var packed uint32
	for k := 0; k < n; k++ {
		var reg uint8
		if d.op == ST {
			reg = dec[i+k].rs2 & 31
		} else {
			reg = zdst(dec[i+k].rd)
		}
		packed |= uint32(reg) << (8 * k)
	}
	s.imm2 = int32(packed)
	switch {
	case d.op == LD && n == 3:
		s.kind = kLd3
	case d.op == LD && n == 4:
		s.kind = kLd4
	case d.op == ST && n == 3:
		s.kind = kSt3
	default:
		s.kind = kSt4
	}
	return s
}

// fusePair recognizes the superinstruction idioms. The fused executors run
// the two halves in textual order (the second half reads registers after
// the first half's write), so fusion never changes architectural state.
func fusePair(d1, d2 *decoded, i int) (tstep, bool) {
	// NOP elision: the surviving instruction's step covers both source
	// pcs. A fault inside a NOP+X step must attribute to X's pc, so the
	// step is compiled at the survivor's address.
	if d2.op == NOP {
		s := singleStep(d1, i)
		s.n = 2
		return s, true
	}
	if d1.op == NOP {
		s := singleStep(d2, i+1)
		s.n = 2
		return s, true
	}
	var kind uint8
	switch {
	case d1.op == SRLI && d2.op == ANDI:
		kind = kSrliAndi
	case d1.op == SLLI && d2.op == ORI:
		kind = kSlliOri
	case d1.op == MOV && d2.op == MOV:
		kind = kMovMov
	case d1.op == ANDI && d2.op == LD:
		kind = kAndiLd
	case d1.op == ADDI && d2.op == LD:
		kind = kAddiLd
	case d1.op == LD && d2.op == LD:
		kind = kLdLd
	case d1.op == ST && d2.op == ST:
		kind = kStSt
	case d1.op == MOV && d2.op == LD:
		kind = kMovLd
	case d1.op == LD && d2.op == MOV:
		kind = kLdMov
	case d1.op == LD && d2.op == ST:
		kind = kLdSt
	case d1.op == ST && d2.op == LD:
		kind = kStLd
	case d1.op == ST && d2.op == MOV:
		kind = kStMov
	case d1.op == MOV && d2.op == ST:
		kind = kMovSt
	case d1.op == ADDI && d2.op == ST:
		kind = kAddiSt
	case d1.op == LD && d2.op == SRLI:
		kind = kLdSrli
	case d1.op == MOV && d2.op == SRLI:
		kind = kMovSrli
	case d1.op == LD && d2.op == ADDI:
		kind = kLdAddi
	case d1.op == ST && d2.op == LI:
		kind = kStLi
	case d1.op == LI && d2.op == OR:
		kind = kLiOr
	case d1.op == OR && d2.op == ADDI:
		kind = kOrAddi
	case d1.op == SLLI && d2.op == SRAI:
		kind = kSlliSrai
	default:
		return tstep{}, false
	}
	return tstep{
		kind: kind, n: 2,
		rd: zdst(d1.rd), rs1: d1.rs1 & 31, rs2: d1.rs2 & 31, imm: d1.imm,
		rd2: zdst(d2.rd), rs3: d2.rs1 & 31, tag: d2.rs2 & 31, imm2: d2.imm,
		off: int32(i),
	}, true
}

// slotSimple reports whether a delay-slot instruction can be executed
// inline by the terminator. Excluded ops (control transfers, checked or
// trap-checked accesses, SYS, HALT) have delay-slot semantics subtle
// enough — faults, pend-state cancellation — that the terminator delegates
// the whole transfer to the reference stepper instead.
func slotSimple(o Op) bool {
	switch o {
	case NOP, MOV, LI, ADD, ADDI, SUB, AND, ANDI, OR, ORI, XOR, XORI,
		SLL, SLLI, SRL, SRLI, SRA, SRAI, MUL, DIV, REM,
		FADD, FSUB, FMUL, FDIV, FLT, FEQ, ITOF, FTOI,
		LD, ST, LDT, STT:
		return true
	}
	return false
}

// buildTerm fills in the terminator for the block body ending at tpc.
func (p *Program) buildTerm(b *tblock, tpc int) {
	dec := p.dec
	t := &b.term
	t.pc = int32(tpc)
	if tpc >= len(dec) {
		// Ran off the end of the stream: the transfer to tpc faults with
		// "pc out of range", exactly where the fused loop would.
		t.kind = termFall
		t.fall.nextPC = int32(tpc)
		return
	}
	d := &dec[tpc]
	if !(d.op.IsControl() || d.op == SYS || d.op == HALT) {
		t.kind = termFall
		t.fall.nextPC = int32(tpc)
		return
	}
	t.op = d.op
	t.rs1, t.rs2, t.tag = d.rs1&31, d.rs2&31, d.tag
	t.imm, t.target = d.imm, d.target
	switch d.op {
	case HALT:
		t.kind = termHalt
		return
	case SYS:
		t.kind = termSys
		t.fall.nextPC = int32(tpc + 1)
		return
	}
	if tpc+2 >= len(dec) {
		t.kind = termInterp
		return
	}
	s1, s2 := &dec[tpc+1], &dec[tpc+2]
	t.slot1, t.slot2 = s1, s2
	t.slotsNop = d.slotsNop
	if !slotSimple(s1.op) || !slotSimple(s2.op) {
		t.kind = termInterp
		return
	}
	t.slots[0] = singleStep(s1, tpc+1)
	t.slots[1] = singleStep(s2, tpc+2)
	switch d.op {
	case JMP, JAL:
		t.kind = termJump
		t.link = d.op == JAL
		t.taken = p.makeOutcome(d, s1, s2, int(d.target), false)
	case JALR, JR:
		t.kind = termJumpInd
		t.link = d.op == JALR
		t.taken = p.makeOutcome(d, s1, s2, -1, false)
	default:
		t.kind = termCond
		t.taken = p.makeOutcome(d, s1, s2, int(d.target), false)
		t.fall = p.makeOutcome(d, s1, s2, tpc+3, d.squash)
	}
}

// makeOutcome computes the static accounting of one branch direction.
// target < 0 means the transfer target is computed at run time (JALR/JR);
// annul means this is the not-taken direction of a squashing branch.
func (p *Program) makeOutcome(d, s1, s2 *decoded, target int, annul bool) outcome {
	o := outcome{nextPC: int32(target)}
	branchCyc := uint64(d.cycles)
	// The fused loop checks the cycle limit right after dispatching the
	// transfer: before the slots run, except on the both-slots-NOP fast
	// path, where it consumes the two slot cycles first.
	o.checkCyc = branchCyc
	if d.slotsNop {
		o.checkCyc = branchCyc + 2
	}
	if annul {
		o.annul = true
		o.cyc = branchCyc + 2 // two annulled slot cycles
		return o
	}
	o.cyc = branchCyc + uint64(s1.cycles) + uint64(s2.cycles)
	if s1.op.IsLoad() && s2.readMask&s1.wmask != 0 {
		o.cyc++
		o.stalls = append(o.stalls, stallRec{s1.cat, s1.sub, s1.rtCheck})
	}
	if s2.op.IsLoad() {
		if target < 0 {
			o.s2wmask = s2.wmask
		} else if uint(target) < uint(len(p.dec)) && p.dec[target].readMask&s2.wmask != 0 {
			o.cyc++
			o.stalls = append(o.stalls, stallRec{s2.cat, s2.sub, s2.rtCheck})
		}
	}
	return o
}
