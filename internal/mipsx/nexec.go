package mipsx

// Shared step executor for the native (closure-threaded) engine.
//
// execSteps runs a slice of dispatch steps — a block body, a terminator's
// delay slots, or a superblock's flattened stream — against the working
// register file and memory. It is the same switch the translated engine
// dispatches through, recast with an explicit exit protocol (nstate)
// instead of gotos so closures and the native runner can share it: a step
// that faults, fails a tag check, or takes an arithmetic trap records what
// happened in the nstate and execSteps returns that step's index; a side
// exit from a superblock edge does the same. A completed run returns -1.
//
// Configuration (tag geometry, address masking, the integer-item test)
// comes in through an nspec pointer captured once at native-compile time,
// never from the Machine, so a program's native code is pinned to the
// hardware config it was compiled for (see nativeFor in nclosure.go).

import "math"

// nspec is the hardware configuration a program's native code was
// specialized against: every value the emitted closures and superblock
// streams would otherwise read from Machine.HW per executed instruction.
type nspec struct {
	tagShift         uint32
	tagMask          uint32
	memAddrMask      uint32
	isIntItem        func(uint32) bool
	trapHandler      int
	checkFailHandler int
	trapCycles       uint64

	// Memory-tagging geometry (LDM/STM). memtagLimit zero disables checks.
	memtagBase        uint32
	memtagShift       uint32
	memtagLimit       uint32
	memtagFailHandler int
}

// nstate exit codes.
const (
	nexNone   uint8 = iota // still running / completed
	nexFault               // simulator fault: fpc, failf, failargs set
	nexCheck               // LDC/STC tag mismatch: fpc, trapA (item), trapTag set
	nexTrap                // ADDTC/SUBTC trap: fpc, trapOp, trapRd, trapA, trapB set
	nexSide                // superblock edge went cold: sbj, taken set
	nexMemtag              // LDM/STM granule mismatch: fpc, trapA (item), trapB (addr) set
)

// nstate carries the exit condition out of a closure chain or a superblock
// stream back to the native runner. The zero value means "completed".
type nstate struct {
	exit  uint8
	taken bool  // nexSide: the branch direction actually taken
	sbj   int32 // nexSide: index of the superblock element whose edge went cold
	fpc   int32 // source pc of the offending instruction (nexFault/nexCheck/nexTrap)
	sidx  int32 // aborting step index, set by register-caching chains (sbchain.go)

	failf    string
	failargs []any

	// Trap mailbox for nexCheck/nexTrap.
	trapOp  uint8  // ADDTC or SUBTC
	trapTag uint8  // LDC/STC: the tag the access wanted
	trapRd  uint8  // ADDTC/SUBTC: pre-remap destination register
	trapA   uint32 // LDC/STC: the item; ADDTC/SUBTC: operand a; LDM/STM: the item
	trapB   uint32 // ADDTC/SUBTC: operand b; LDM/STM: the checked address
}

// faultAt records a simulator fault. The args slice is the only allocation
// on the native engine's fault path, and only happens when a run actually
// faults.
func (st *nstate) faultAt(pc int32, f string, args ...any) {
	st.exit = nexFault
	st.fpc = pc
	st.failf = f
	st.failargs = args
}

// nfn is one node of a compiled closure chain: it executes against the
// working register file and memory, and reports aborts through st.
type nfn func(r *[256]uint32, mem []uint32, st *nstate)

// kEdge is the superblock edge pseudo-step: evaluate a conditional branch
// and bail out of the stream (nexSide) when it resolves against the
// direction the superblock was formed for. Field conventions: rd holds the
// branch Op, rs1/rs2/tag/imm its operands, rd2 the superblock element
// index, rs3 is nonzero when the hot direction is taken.
const kEdge uint8 = 96

// kEdgeJr is the superblock edge pseudo-step for an indirect jump: bail
// out of the stream (nexSide) when the jump register does not hold the
// code address the superblock was formed for. Field conventions: rs1
// holds the jump's register, imm the matched code address (target pc<<2,
// aligned by construction, so a misaligned register value exits the
// stream and faults on the ordinary path), rd2 the superblock element
// index.
const kEdgeJr uint8 = 97

// kEdgeJrL is kEdgeJr fused with a jalr's return-address write (imm2),
// performed only once the guard has passed — a side exit leaves the link
// register untouched for the ordinary terminator to write.
const kEdgeJrL uint8 = 98

// kEdgeJrA is kEdgeJr fused with its sole surviving delay-slot
// instruction when that instruction is an ADDI (rd ← rs2 + imm2, the
// shape a return's stack-pointer adjustment takes). The ADDI executes
// only once the guard has passed, exactly as the separate slot step would
// have — a side exit re-runs the whole block on the ordinary path.
const kEdgeJrA uint8 = 95

// kEdgeOp0 starts the per-opcode edge kinds: kEdgeOp0 + (op - BEQ)
// evaluates that branch directly, skipping kEdge's inner opcode switch on
// the hottest dispatch in a superblock stream. Same field conventions as
// kEdge.
const kEdgeOp0 uint8 = 99

// kEdgeSrliBnei fuses the software tag-check idiom's tag extract into its
// compare edge: rd ← rs1 >> imm (a body write of the edge's own element,
// performed unconditionally, exactly as the separate srli step would),
// then the bnei edge tests the extracted value against imm2. rd2/rs3 as
// in kEdge.
const kEdgeSrliBnei uint8 = 111

// kEdgeBneiAnd fuses a bnei edge with the *next* element's leading and
// (the untag that follows a passed software tag check): the guard runs
// first — rs1/imm/rd2/rs3 as in kEdge — and only when it passes is
// rd ← tag & rs2 performed, so a side exit leaves the next element's
// state untouched for the per-block path.
const kEdgeBneiAnd uint8 = 112

// edgeKind picks the edge pseudo-step kind for a conditional branch.
func edgeKind(op Op) uint8 {
	if op >= BEQ && op <= BTNE {
		return kEdgeOp0 + uint8(op-BEQ)
	}
	return kEdge
}

// execSteps executes steps until completion (-1) or an abort (the index of
// the stopping step, with st describing why).
func execSteps(steps []tstep, r *[256]uint32, mem []uint32, sp *nspec, st *nstate) int {
	si := 0
dispatch:
	for si < len(steps) {
		s := &steps[si]
		si++
		switch s.kind {
		case uint8(NOP):
		case uint8(MOV):
			r[s.rd] = r[s.rs1]
		case uint8(LI):
			r[s.rd] = uint32(s.imm)
		case uint8(ADD):
			r[s.rd] = uint32(int32(r[s.rs1]) + int32(r[s.rs2]))
		case uint8(ADDI):
			r[s.rd] = uint32(int32(r[s.rs1]) + s.imm)
		case uint8(SUB):
			r[s.rd] = uint32(int32(r[s.rs1]) - int32(r[s.rs2]))
		case uint8(AND):
			r[s.rd] = r[s.rs1] & r[s.rs2]
		case uint8(ANDI):
			r[s.rd] = r[s.rs1] & uint32(s.imm)
		case uint8(OR):
			r[s.rd] = r[s.rs1] | r[s.rs2]
		case uint8(ORI):
			r[s.rd] = r[s.rs1] | uint32(s.imm)
		case uint8(XOR):
			r[s.rd] = r[s.rs1] ^ r[s.rs2]
		case uint8(XORI):
			r[s.rd] = r[s.rs1] ^ uint32(s.imm)
		case uint8(SLL):
			r[s.rd] = r[s.rs1] << (r[s.rs2] & 31)
		case uint8(SLLI):
			r[s.rd] = r[s.rs1] << (uint32(s.imm) & 31)
		case uint8(SRL):
			r[s.rd] = r[s.rs1] >> (r[s.rs2] & 31)
		case uint8(SRLI):
			r[s.rd] = r[s.rs1] >> (uint32(s.imm) & 31)
		case uint8(SRA):
			r[s.rd] = uint32(int32(r[s.rs1]) >> (r[s.rs2] & 31))
		case uint8(SRAI):
			r[s.rd] = uint32(int32(r[s.rs1]) >> (uint32(s.imm) & 31))
		case uint8(MUL):
			r[s.rd] = uint32(int32(r[s.rs1]) * int32(r[s.rs2]))
		case uint8(FADD):
			r[s.rd] = math.Float32bits(math.Float32frombits(r[s.rs1]) + math.Float32frombits(r[s.rs2]))
		case uint8(FSUB):
			r[s.rd] = math.Float32bits(math.Float32frombits(r[s.rs1]) - math.Float32frombits(r[s.rs2]))
		case uint8(FMUL):
			r[s.rd] = math.Float32bits(math.Float32frombits(r[s.rs1]) * math.Float32frombits(r[s.rs2]))
		case uint8(FDIV):
			r[s.rd] = math.Float32bits(math.Float32frombits(r[s.rs1]) / math.Float32frombits(r[s.rs2]))
		case uint8(FLT):
			if math.Float32frombits(r[s.rs1]) < math.Float32frombits(r[s.rs2]) {
				r[s.rd] = 1
			} else {
				r[s.rd] = 0
			}
		case uint8(FEQ):
			if math.Float32frombits(r[s.rs1]) == math.Float32frombits(r[s.rs2]) {
				r[s.rd] = 1
			} else {
				r[s.rd] = 0
			}
		case uint8(ITOF):
			r[s.rd] = math.Float32bits(float32(int32(r[s.rs1])))
		case uint8(FTOI):
			r[s.rd] = uint32(int32(math.Float32frombits(r[s.rs1])))
		case uint8(DIV):
			if r[s.rs2] == 0 {
				st.faultAt(s.off, "division by zero")
				return si - 1
			}
			r[s.rd] = uint32(int32(r[s.rs1]) / int32(r[s.rs2]))
		case uint8(REM):
			if r[s.rs2] == 0 {
				st.faultAt(s.off, "division by zero")
				return si - 1
			}
			r[s.rd] = uint32(int32(r[s.rs1]) % int32(r[s.rs2]))

		case uint8(LD):
			addr := uint32(int32(r[s.rs1]) + s.imm)
			if addr&3 != 0 {
				st.faultAt(s.off, "misaligned load at %#x", addr)
				return si - 1
			}
			if int(addr>>2) >= len(mem) {
				st.faultAt(s.off, "load out of range at %#x", addr)
				return si - 1
			}
			r[s.rd] = mem[addr>>2]
		case uint8(ST):
			addr := uint32(int32(r[s.rs1]) + s.imm)
			if addr&3 != 0 {
				st.faultAt(s.off, "misaligned store at %#x", addr)
				return si - 1
			}
			if int(addr>>2) >= len(mem) {
				st.faultAt(s.off, "store out of range at %#x", addr)
				return si - 1
			}
			mem[addr>>2] = r[s.rs2]
		case uint8(LDT):
			addr := uint32(int32(r[s.rs1])+s.imm) & sp.memAddrMask &^ 3
			var v uint32
			if int(addr>>2) < len(mem) {
				v = mem[addr>>2]
			}
			r[s.rd] = v
		case uint8(STT):
			addr := uint32(int32(r[s.rs1])+s.imm) & sp.memAddrMask &^ 3
			if int(addr>>2) >= len(mem) {
				st.faultAt(s.off, "store out of range at %#x", addr)
				return si - 1
			}
			mem[addr>>2] = r[s.rs2]
		case uint8(LDC), uint8(STC):
			v := r[s.rs1]
			if uint8((v>>sp.tagShift)&sp.tagMask) != s.tag {
				st.exit = nexCheck
				st.fpc = s.off
				st.trapA = v
				st.trapTag = s.tag
				return si - 1
			}
			addr := uint32(int32(v)+s.imm) & sp.memAddrMask
			if addr&3 != 0 {
				if s.kind == uint8(LDC) {
					st.faultAt(s.off, "misaligned load at %#x", addr)
				} else {
					st.faultAt(s.off, "misaligned store at %#x", addr)
				}
				return si - 1
			}
			if int(addr>>2) >= len(mem) {
				if s.kind == uint8(LDC) {
					st.faultAt(s.off, "load out of range at %#x", addr)
				} else {
					st.faultAt(s.off, "store out of range at %#x", addr)
				}
				return si - 1
			}
			if s.kind == uint8(LDC) {
				r[s.rd] = mem[addr>>2]
			} else {
				mem[addr>>2] = r[s.rs2]
			}

		case uint8(LDM), uint8(STM):
			item := r[s.rs1]
			addr := uint32(int32(item)+s.imm) & sp.memAddrMask &^ 3
			if addr < sp.memtagLimit {
				ca := mem[(sp.memtagBase+(addr>>sp.memtagShift)<<2)>>2]
				viol := ca == 0
				if !viol {
					cb := s.tag
					if cb == RZero {
						cb = s.rs1
					}
					ba := r[cb] & sp.memAddrMask &^ 3
					if ba>>sp.memtagShift != addr>>sp.memtagShift && ba < sp.memtagLimit &&
						mem[(sp.memtagBase+(ba>>sp.memtagShift)<<2)>>2] != ca {
						viol = true
					}
				}
				if viol {
					st.exit = nexMemtag
					st.fpc = s.off
					st.trapA = item
					st.trapB = addr
					return si - 1
				}
			}
			if int(addr>>2) >= len(mem) {
				if s.kind == uint8(LDM) {
					st.faultAt(s.off, "load out of range at %#x", addr)
				} else {
					st.faultAt(s.off, "store out of range at %#x", addr)
				}
				return si - 1
			}
			if s.kind == uint8(LDM) {
				r[s.rd] = mem[addr>>2]
			} else {
				mem[addr>>2] = r[s.rs2]
			}

		case uint8(ADDTC), uint8(SUBTC):
			if sp.isIntItem == nil {
				st.faultAt(s.off, "%s without integer-test hardware", Op(s.kind))
				return si - 1
			}
			a, bv := r[s.rs1], r[s.rs2]
			var s64 int64
			if s.kind == uint8(ADDTC) {
				s64 = int64(int32(a)) + int64(int32(bv))
			} else {
				s64 = int64(int32(a)) - int64(int32(bv))
			}
			res := uint32(s64)
			if !sp.isIntItem(a) || !sp.isIntItem(bv) ||
				s64 != int64(int32(res)) || !sp.isIntItem(res) {
				st.exit = nexTrap
				st.fpc = s.off
				st.trapOp = s.kind
				st.trapRd = s.tag
				st.trapA = a
				st.trapB = bv
				return si - 1
			}
			r[s.rd] = res

		case kSrliAndi:
			r[s.rd] = r[s.rs1] >> (uint32(s.imm) & 31)
			r[s.rd2] = r[s.rs3] & uint32(s.imm2)
		case kSlliOri:
			r[s.rd] = r[s.rs1] << (uint32(s.imm) & 31)
			r[s.rd2] = r[s.rs3] | uint32(s.imm2)
		case kMovMov:
			r[s.rd] = r[s.rs1]
			r[s.rd2] = r[s.rs3]
		case kMov3:
			r[s.rd] = r[s.rs1]
			r[s.rd2] = r[s.rs3]
			r[s.rs2] = r[s.tag]
		case kMov4:
			r[s.rd] = r[s.rs1]
			r[s.rd2] = r[s.rs3]
			r[s.rs2] = r[s.tag]
			r[uint8(s.imm)] = r[uint8(s.imm>>8)]
		case kAndiLd, kAddiLd:
			if s.kind == kAndiLd {
				r[s.rd] = r[s.rs1] & uint32(s.imm)
			} else {
				r[s.rd] = uint32(int32(r[s.rs1]) + s.imm)
			}
			addr := uint32(int32(r[s.rs3]) + s.imm2)
			if addr&3 != 0 {
				st.faultAt(s.off+1, "misaligned load at %#x", addr)
				return si - 1
			}
			if int(addr>>2) >= len(mem) {
				st.faultAt(s.off+1, "load out of range at %#x", addr)
				return si - 1
			}
			r[s.rd2] = mem[addr>>2]
		case kLdLd:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, true)
				return si - 1
			}
			r[s.rd] = mem[a1>>2]
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, true)
				return si - 1
			}
			r[s.rd2] = mem[a2>>2]
		case kStSt:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, false)
				return si - 1
			}
			mem[a1>>2] = r[s.rs2]
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, false)
				return si - 1
			}
			mem[a2>>2] = r[s.tag]
		case kMovLd:
			r[s.rd] = r[s.rs1]
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, true)
				return si - 1
			}
			r[s.rd2] = mem[a2>>2]
		case kLdMov:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, true)
				return si - 1
			}
			r[s.rd] = mem[a1>>2]
			r[s.rd2] = r[s.rs3]
		case kLdSt:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, true)
				return si - 1
			}
			r[s.rd] = mem[a1>>2]
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, false)
				return si - 1
			}
			mem[a2>>2] = r[s.tag]
		case kStLd:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, false)
				return si - 1
			}
			mem[a1>>2] = r[s.rs2]
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, true)
				return si - 1
			}
			r[s.rd2] = mem[a2>>2]
		case kStMov:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, false)
				return si - 1
			}
			mem[a1>>2] = r[s.rs2]
			r[s.rd2] = r[s.rs3]
		case kMovSt:
			r[s.rd] = r[s.rs1]
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, false)
				return si - 1
			}
			mem[a2>>2] = r[s.tag]
		case kAddiSt:
			r[s.rd] = uint32(int32(r[s.rs1]) + s.imm)
			a2 := uint32(int32(r[s.rs3]) + s.imm2)
			if a2&3 != 0 || int(a2>>2) >= len(mem) {
				st.memFault(s.off+1, a2, false)
				return si - 1
			}
			mem[a2>>2] = r[s.tag]
		case kLdSrli:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, true)
				return si - 1
			}
			r[s.rd] = mem[a1>>2]
			r[s.rd2] = r[s.rs3] >> (uint32(s.imm2) & 31)
		case kMovSrli:
			r[s.rd] = r[s.rs1]
			r[s.rd2] = r[s.rs3] >> (uint32(s.imm2) & 31)
		case kLdAddi:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, true)
				return si - 1
			}
			r[s.rd] = mem[a1>>2]
			r[s.rd2] = uint32(int32(r[s.rs3]) + s.imm2)
		case kStLi:
			a1 := uint32(int32(r[s.rs1]) + s.imm)
			if a1&3 != 0 || int(a1>>2) >= len(mem) {
				st.memFault(s.off, a1, false)
				return si - 1
			}
			mem[a1>>2] = r[s.rs2]
			r[s.rd2] = uint32(s.imm2)
		case kLiOr:
			r[s.rd] = uint32(s.imm)
			r[s.rd2] = r[s.rs3] | r[s.tag]
		case kOrAddi:
			r[s.rd] = r[s.rs1] | r[s.rs2]
			r[s.rd2] = uint32(int32(r[s.rs3]) + s.imm2)
		case kSlliSrai:
			r[s.rd] = r[s.rs1] << (uint32(s.imm) & 31)
			r[s.rd2] = uint32(int32(r[s.rs3]) >> (uint32(s.imm2) & 31))

		case kLd3:
			a := uint32(int32(r[s.rs1]) + s.imm)
			w := int(a >> 2)
			if a&3 != 0 || w+2 >= len(mem) {
				if !memRunSlowExec(s, r, mem, st) {
					return si - 1
				}
				continue dispatch
			}
			v := uint32(s.imm2)
			r[uint8(v)] = mem[w]
			r[uint8(v>>8)] = mem[w+1]
			r[uint8(v>>16)] = mem[w+2]
		case kLd4:
			a := uint32(int32(r[s.rs1]) + s.imm)
			w := int(a >> 2)
			if a&3 != 0 || w+3 >= len(mem) {
				if !memRunSlowExec(s, r, mem, st) {
					return si - 1
				}
				continue dispatch
			}
			v := uint32(s.imm2)
			r[uint8(v)] = mem[w]
			r[uint8(v>>8)] = mem[w+1]
			r[uint8(v>>16)] = mem[w+2]
			r[uint8(v>>24)] = mem[w+3]
		case kSt3:
			a := uint32(int32(r[s.rs1]) + s.imm)
			w := int(a >> 2)
			if a&3 != 0 || w+2 >= len(mem) {
				if !memRunSlowExec(s, r, mem, st) {
					return si - 1
				}
				continue dispatch
			}
			v := uint32(s.imm2)
			mem[w] = r[uint8(v)]
			mem[w+1] = r[uint8(v>>8)]
			mem[w+2] = r[uint8(v>>16)]
		case kSt4:
			a := uint32(int32(r[s.rs1]) + s.imm)
			w := int(a >> 2)
			if a&3 != 0 || w+3 >= len(mem) {
				if !memRunSlowExec(s, r, mem, st) {
					return si - 1
				}
				continue dispatch
			}
			v := uint32(s.imm2)
			mem[w] = r[uint8(v)]
			mem[w+1] = r[uint8(v>>8)]
			mem[w+2] = r[uint8(v>>16)]
			mem[w+3] = r[uint8(v>>24)]

		case kAndLd:
			r[s.rd] = r[s.rs1] & r[s.rs2]
			addr := uint32(int32(r[s.rs3]) + s.imm2)
			if addr&3 != 0 || int(addr>>2) >= len(mem) {
				st.memFault(s.off+1, addr, true)
				return si - 1
			}
			r[s.rd2] = mem[addr>>2]

		case kLdcNC, kStcNC:
			// LDC/STC minus the tag check an earlier identical check
			// proved redundant; address masking and fault semantics are
			// bit-identical to the checked kinds.
			addr := uint32(int32(r[s.rs1])+s.imm) & sp.memAddrMask
			if addr&3 != 0 {
				if s.kind == kLdcNC {
					st.faultAt(s.off, "misaligned load at %#x", addr)
				} else {
					st.faultAt(s.off, "misaligned store at %#x", addr)
				}
				return si - 1
			}
			if int(addr>>2) >= len(mem) {
				if s.kind == kLdcNC {
					st.faultAt(s.off, "load out of range at %#x", addr)
				} else {
					st.faultAt(s.off, "store out of range at %#x", addr)
				}
				return si - 1
			}
			if s.kind == kLdcNC {
				r[s.rd] = mem[addr>>2]
			} else {
				mem[addr>>2] = r[s.rs2]
			}

		case kLdmNC, kStmNC:
			// LDM/STM minus the granule check; never produced across a
			// store (granule colors live in memory).
			addr := uint32(int32(r[s.rs1])+s.imm) & sp.memAddrMask &^ 3
			if int(addr>>2) >= len(mem) {
				if s.kind == kLdmNC {
					st.faultAt(s.off, "load out of range at %#x", addr)
				} else {
					st.faultAt(s.off, "store out of range at %#x", addr)
				}
				return si - 1
			}
			if s.kind == kLdmNC {
				r[s.rd] = mem[addr>>2]
			} else {
				mem[addr>>2] = r[s.rs2]
			}

		case kEdge:
			var taken bool
			switch Op(s.rd) {
			case BEQ:
				taken = r[s.rs1] == r[s.rs2]
			case BNE:
				taken = r[s.rs1] != r[s.rs2]
			case BLT:
				taken = int32(r[s.rs1]) < int32(r[s.rs2])
			case BGE:
				taken = int32(r[s.rs1]) >= int32(r[s.rs2])
			case BLE:
				taken = int32(r[s.rs1]) <= int32(r[s.rs2])
			case BGT:
				taken = int32(r[s.rs1]) > int32(r[s.rs2])
			case BEQI:
				taken = int32(r[s.rs1]) == s.imm
			case BNEI:
				taken = int32(r[s.rs1]) != s.imm
			case BLTI:
				taken = int32(r[s.rs1]) < s.imm
			case BGEI:
				taken = int32(r[s.rs1]) >= s.imm
			case BTEQ:
				taken = uint8((r[s.rs1]>>sp.tagShift)&sp.tagMask) == s.tag
			case BTNE:
				taken = uint8((r[s.rs1]>>sp.tagShift)&sp.tagMask) != s.tag
			}
			if taken != (s.rs3 != 0) {
				st.exit = nexSide
				st.taken = taken
				st.sbj = int32(s.rd2)
				return si - 1
			}

		case kEdgeJr:
			if r[s.rs1] != uint32(s.imm) {
				st.exit = nexSide
				st.sbj = int32(s.rd2)
				return si - 1
			}

		case kEdgeJrA:
			if r[s.rs1] != uint32(s.imm) {
				st.exit = nexSide
				st.sbj = int32(s.rd2)
				return si - 1
			}
			r[s.rd] = uint32(int32(r[s.rs2]) + s.imm2)

		case kEdgeJrL:
			if r[s.rs1] != uint32(s.imm) {
				st.exit = nexSide
				st.sbj = int32(s.rd2)
				return si - 1
			}
			r[RRA] = uint32(s.imm2)

		// Per-opcode edge kinds: the branch evaluated directly, no inner
		// opcode switch. A mismatch against the formed direction (rs3)
		// exits the stream.
		case kEdgeOp0 + uint8(BEQ-BEQ):
			if taken := r[s.rs1] == r[s.rs2]; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BNE-BEQ):
			if taken := r[s.rs1] != r[s.rs2]; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BLT-BEQ):
			if taken := int32(r[s.rs1]) < int32(r[s.rs2]); taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BGE-BEQ):
			if taken := int32(r[s.rs1]) >= int32(r[s.rs2]); taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BLE-BEQ):
			if taken := int32(r[s.rs1]) <= int32(r[s.rs2]); taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BGT-BEQ):
			if taken := int32(r[s.rs1]) > int32(r[s.rs2]); taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BEQI-BEQ):
			if taken := int32(r[s.rs1]) == s.imm; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BNEI-BEQ):
			if taken := int32(r[s.rs1]) != s.imm; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BLTI-BEQ):
			if taken := int32(r[s.rs1]) < s.imm; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BGEI-BEQ):
			if taken := int32(r[s.rs1]) >= s.imm; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BTEQ-BEQ):
			if taken := uint8((r[s.rs1]>>sp.tagShift)&sp.tagMask) == s.tag; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
		case kEdgeOp0 + uint8(BTNE-BEQ):
			if taken := uint8((r[s.rs1]>>sp.tagShift)&sp.tagMask) != s.tag; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}

		case kEdgeSrliBnei:
			v := r[s.rs1] >> (uint32(s.imm) & 31)
			r[s.rd] = v
			if taken := int32(v) != s.imm2; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}

		case kEdgeBneiAnd:
			if taken := int32(r[s.rs1]) != s.imm; taken != (s.rs3 != 0) {
				st.exit, st.taken, st.sbj = nexSide, taken, int32(s.rd2)
				return si - 1
			}
			r[s.rd] = r[s.tag] & r[s.rs2]

		default:
			st.faultAt(s.off, "bad opcode %v", Op(s.kind))
			return si - 1
		}
	}
	return -1
}

// memFault records the misaligned/out-of-range fault for one memory access
// of a fused pair, matching the fused loop's messages exactly.
func (st *nstate) memFault(pc int32, addr uint32, isLoad bool) {
	switch {
	case isLoad && addr&3 != 0:
		st.faultAt(pc, "misaligned load at %#x", addr)
	case isLoad:
		st.faultAt(pc, "load out of range at %#x", addr)
	case addr&3 != 0:
		st.faultAt(pc, "misaligned store at %#x", addr)
	default:
		st.faultAt(pc, "store out of range at %#x", addr)
	}
}

// memRunSlowExec re-runs a save/restore run element by element after its
// combined fast-path check missed: either an element genuinely faults (the
// right one, after its predecessors took effect) or the whole run completes
// because the fast check was merely conservative about wrapped addresses.
// Returns false when the run faulted (st is filled in).
func memRunSlowExec(s *tstep, r *[256]uint32, mem []uint32, st *nstate) bool {
	elems := 3
	if s.kind == kLd4 || s.kind == kSt4 {
		elems = 4
	}
	isLoad := s.kind == kLd3 || s.kind == kLd4
	v := uint32(s.imm2)
	for k := 0; k < elems; k++ {
		addr := uint32(int32(r[s.rs1]) + s.imm + int32(4*k))
		if addr&3 != 0 || int(addr>>2) >= len(mem) {
			st.memFault(s.off+int32(k), addr, isLoad)
			return false
		}
		if isLoad {
			r[uint8(v>>(8*k))] = mem[addr>>2]
		} else {
			mem[addr>>2] = r[uint8(v>>(8*k))]
		}
	}
	return true
}
