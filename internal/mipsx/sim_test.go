package mipsx

import (
	"strings"
	"testing"
)

// buildRun assembles the program produced by f (entry label "main" must be
// bound by f) and runs it to completion.
func buildRun(t *testing.T, hw HWConfig, f func(a *Asm)) *Machine {
	t.Helper()
	m, err := buildRunErr(t, hw, f)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func buildRunErr(t *testing.T, hw HWConfig, f func(a *Asm)) (*Machine, error) {
	t.Helper()
	a := NewAsm()
	main := a.NewLabel("main")
	a.Bind(main)
	f(a)
	p, err := a.Finish("main")
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if hw.TrapHandler == 0 {
		hw.TrapHandler = -1
	}
	if hw.CheckFailHandler == 0 {
		hw.CheckFailHandler = -1
	}
	m := NewMachine(p, 4096, hw)
	m.MaxCycles = 1_000_000
	return m, m.Run()
}

func TestALUBasics(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Li(10, 7)
		a.Li(11, 5)
		a.Add(12, 10, 11) // 12
		a.Sub(13, 10, 11) // 2
		a.Mul(14, 10, 11) // 35
		a.Div(15, 14, 10) // 5
		a.Rem(16, 14, 11) // 0
		a.Andi(17, 10, 3) // 3
		a.Ori(18, 11, 8)  // 13
		a.Xori(19, 10, 1) // 6
		a.Slli(20, 11, 2) // 20
		a.Srai(21, 20, 1) // 10
		a.Halt()
	})
	want := map[uint8]int32{12: 12, 13: 2, 14: 35, 15: 5, 16: 0, 17: 3, 18: 13, 19: 6, 20: 20, 21: 10}
	for r, v := range want {
		if got := int32(m.Regs[r]); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestNegativeArithmetic(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Li(10, -7)
		a.Li(11, 2)
		a.Div(12, 10, 11) // -3 (truncating)
		a.Rem(13, 10, 11) // -1
		a.Srai(14, 10, 1) // -4
		a.Srli(15, 10, 28)
		a.Halt()
	})
	if int32(m.Regs[12]) != -3 || int32(m.Regs[13]) != -1 || int32(m.Regs[14]) != -4 {
		t.Errorf("got %d %d %d", int32(m.Regs[12]), int32(m.Regs[13]), int32(m.Regs[14]))
	}
	if m.Regs[15] != 0xF {
		t.Errorf("srli = %#x", m.Regs[15])
	}
}

func TestMemory(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Li(10, 0x100)
		a.Li(11, 42)
		a.St(11, 10, 0)
		a.St(11, 10, 4)
		a.Ld(12, 10, 0)
		a.Addi(13, 12, 1)
		a.Halt()
	})
	if m.Mem[0x100>>2] != 42 || m.Mem[0x104>>2] != 42 {
		t.Error("stores did not land")
	}
	if m.Regs[13] != 43 {
		t.Errorf("load+use = %d", m.Regs[13])
	}
	if m.Stats.Stalls == 0 {
		t.Error("expected a load interlock stall (ld immediately followed by use)")
	}
}

func TestMemoryFaults(t *testing.T) {
	for name, f := range map[string]func(a *Asm){
		"misaligned": func(a *Asm) { a.Li(10, 0x101); a.Ld(11, 10, 0); a.Halt() },
		"wild":       func(a *Asm) { a.Li(10, 1<<30); a.Ld(11, 10, 0); a.Halt() },
		"divzero":    func(a *Asm) { a.Li(10, 3); a.Div(11, 10, 0); a.Halt() },
	} {
		_, err := buildRunErr(t, HWConfig{}, f)
		if err == nil {
			t.Errorf("%s: expected fault", name)
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		loop := a.NewLabel("loop")
		done := a.NewLabel("done")
		a.Li(10, 0)  // sum
		a.Li(11, 1)  // i
		a.Li(12, 10) // limit
		a.Bind(loop)
		a.Bgt(11, 12, done)
		a.Add(10, 10, 11)
		a.Addi(11, 11, 1)
		a.Jmp(loop)
		a.Bind(done)
		a.Halt()
	})
	if m.Regs[10] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[10])
	}
}

func TestDelaySlotsExecute(t *testing.T) {
	// An instruction before a taken branch that the scheduler moves into a
	// delay slot must still execute.
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		over := a.NewLabel("over")
		a.Li(10, 1)
		a.Li(11, 99) // movable; should land in a delay slot and still run
		a.Beq(0, 0, over)
		a.Li(11, 0) // skipped by the branch
		a.Bind(over)
		a.Halt()
	})
	if m.Regs[11] != 99 {
		t.Errorf("r11 = %d, want 99 (delay-slot instruction lost)", m.Regs[11])
	}
}

func TestCallReturn(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		fn := a.NewLabel("double")
		after := a.NewLabel("after")
		a.Li(RArg0, 21)
		a.Jal(fn)
		a.Jmp(after)
		a.Bind(fn)
		a.Add(RRet, RArg0, RArg0)
		a.Jr(RRA)
		a.Bind(after)
		a.Mov(10, RRet)
		a.Halt()
	})
	if m.Regs[10] != 42 {
		t.Errorf("call result = %d, want 42", m.Regs[10])
	}
}

func TestIndirectCall(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		fn := a.NewLabel("inc")
		tab := a.NewLabel("go")
		a.Li(RArg0, 41)
		// Load the function address into a register via a label-relative
		// trick: JAL to a stub that captures its own address.
		a.Jal(tab)
		a.Mov(10, RRet)
		a.Halt()
		a.Bind(fn)
		a.Addi(RRet, RArg0, 1)
		a.Jr(RRA)
		a.Bind(tab)
		// Call fn indirectly.
		a.Mov(RT2, RRA)
		a.Jal(fn)
		a.Jr(RT2)
	})
	if m.Regs[10] != 42 {
		t.Errorf("indirect result = %d, want 42", m.Regs[10])
	}
}

func TestSyscallsOutput(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Li(RRet, 'h')
		a.Sys(SysPutChar)
		a.Li(RRet, 'i')
		a.Sys(SysPutChar)
		a.Li(RRet, -12)
		a.Sys(SysPutInt)
		a.Halt()
	})
	if got := m.Output.String(); got != "hi-12" {
		t.Errorf("output = %q", got)
	}
}

func TestSysError(t *testing.T) {
	_, err := buildRunErr(t, HWConfig{}, func(a *Asm) {
		a.Li(RRet, 7)
		a.Li(3, 0xBEEF>>2<<2)
		a.Sys(SysError)
		a.Halt()
	})
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("err = %v, want RuntimeError", err)
	}
	if re.Code != 7 {
		t.Errorf("code = %d", re.Code)
	}
}

func TestTagBranch(t *testing.T) {
	hw := HWConfig{TagShift: 27, TagMask: 31}
	m := buildRun(t, hw, func(a *Asm) {
		yes := a.NewLabel("yes")
		no := a.NewLabel("no")
		a.Li(10, int32(uint32(3)<<27|0x123)) // tag 3
		a.Bteq(10, 3, yes)
		a.Jmp(no)
		a.Bind(yes)
		a.Li(11, 1)
		a.Halt()
		a.Bind(no)
		a.Li(11, 2)
		a.Halt()
	})
	if m.Regs[11] != 1 {
		t.Errorf("bteq took wrong path: r11=%d", m.Regs[11])
	}
}

func TestTagIgnoringMemory(t *testing.T) {
	hw := HWConfig{MemAddrMask: 0x07FFFFFF}
	m := buildRun(t, hw, func(a *Asm) {
		a.Li(10, 0x200)
		a.Li(11, 77)
		a.St(11, 10, 0)
		// Tagged pointer: tag 5 in the top bits.
		a.Li(12, int32(uint32(5)<<27|0x200))
		a.Ldt(13, 12, 0)
		a.Stt(13, 12, 4)
		a.Halt()
	})
	if m.Regs[13] != 77 {
		t.Errorf("ldt = %d", m.Regs[13])
	}
	if m.Mem[0x204>>2] != 77 {
		t.Error("stt did not mask the tag")
	}
}

func TestCheckedLoad(t *testing.T) {
	hw := HWConfig{TagShift: 27, TagMask: 31, MemAddrMask: 0x07FFFFFF}
	m := buildRun(t, hw, func(a *Asm) {
		a.Li(10, 0x200)
		a.Li(11, 99)
		a.St(11, 10, 0)
		a.Li(12, int32(uint32(1)<<27|0x200)) // pair-tagged pointer
		a.Ldc(13, 12, 0, 1)
		a.Halt()
	})
	if m.Regs[13] != 99 {
		t.Errorf("ldc = %d", m.Regs[13])
	}
	// Mismatched tag must fault when no handler is configured.
	_, err := buildRunErr(t, hw, func(a *Asm) {
		a.Li(12, int32(uint32(2)<<27|0x200))
		a.Ldc(13, 12, 0, 1)
		a.Halt()
	})
	if err == nil {
		t.Error("ldc with wrong tag: expected fault")
	}
}

func isInt27(v uint32) bool {
	return uint32(int32(v)<<5>>5) == v
}

func TestCheckedArith(t *testing.T) {
	hw := HWConfig{TagShift: 27, TagMask: 31, IsIntItem: isInt27}
	m := buildRun(t, hw, func(a *Asm) {
		a.Li(10, 20)
		a.Li(11, 22)
		a.Addtc(12, 10, 11)
		a.Li(13, -5)
		a.Subtc(14, 12, 13) // 47
		a.Halt()
	})
	if m.Regs[12] != 42 || m.Regs[14] != 47 {
		t.Errorf("addtc/subtc = %d %d", m.Regs[12], m.Regs[14])
	}
	// Non-integer operand traps (faults without a handler).
	_, err := buildRunErr(t, hw, func(a *Asm) {
		a.Li(10, int32(uint32(1)<<27|0x100)) // pair item
		a.Li(11, 1)
		a.Addtc(12, 10, 11)
		a.Halt()
	})
	if err == nil {
		t.Error("addtc on pair: expected trap fault")
	}
	// Overflow traps.
	_, err = buildRunErr(t, hw, func(a *Asm) {
		a.Li(10, 1<<26-1)
		a.Li(11, 1)
		a.Addtc(12, 10, 11)
		a.Halt()
	})
	if err == nil {
		t.Error("addtc overflow: expected trap fault")
	}
}

func TestArithTrapHandler(t *testing.T) {
	// Build a program with a software trap handler that services the trap
	// by writing a sentinel result.
	a := NewAsm()
	main := a.NewLabel("main")
	handler := a.NewLabel("handler")
	a.Bind(main)
	a.Li(10, int32(uint32(1)<<27|0x100)) // non-integer
	a.Li(11, 1)
	a.Addtc(12, 10, 11)
	a.Mov(13, 12) // executes after trap return
	a.Halt()
	a.Bind(handler)
	a.Li(RT0, 4242)
	a.St(RT0, RZero, TrapResultAddr)
	a.Sys(SysTrapReturn)
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	hw := HWConfig{TagShift: 27, TagMask: 31, IsIntItem: isInt27,
		TrapHandler: p.Labels["handler"], CheckFailHandler: -1}
	m := NewMachine(p, 4096, hw)
	m.MaxCycles = 10000
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Regs[13] != 4242 {
		t.Errorf("trap result = %d, want 4242", m.Regs[13])
	}
	if m.Stats.Traps != 1 {
		t.Errorf("traps = %d", m.Stats.Traps)
	}
}

func TestStatsCategories(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Cat(CatTagRemove, SubNone)
		a.Andi(10, 11, 0x7)
		a.Cat(CatTagExtract, SubList)
		a.Srli(12, 11, 27)
		a.CatRT(CatTagCheck, SubList)
		skip := a.NewLabel("skip")
		a.Beq(12, 0, skip)
		a.Bind(skip)
		a.Work()
		a.Halt()
	})
	if m.Stats.ByCat[CatTagRemove] != 1 {
		t.Errorf("remove cycles = %d", m.Stats.ByCat[CatTagRemove])
	}
	if m.Stats.ByCat[CatTagExtract] != 1 {
		t.Errorf("extract cycles = %d", m.Stats.ByCat[CatTagExtract])
	}
	// The check branch got two unfilled delay slots (the preceding
	// instructions feed its condition), so check >= 1+2 cycles... the
	// extract may be hoisted? It writes r12 which the branch reads, so it
	// cannot move: slots are noops with the branch's category.
	if m.Stats.ByCat[CatTagCheck] < 3 {
		t.Errorf("check cycles = %d, want >= 3", m.Stats.ByCat[CatTagCheck])
	}
	if m.Stats.ByRTSub[SubList] < 3 {
		t.Errorf("rt list cycles = %d", m.Stats.ByRTSub[SubList])
	}
	if m.Stats.BySub[SubList] < 4 {
		t.Errorf("list sub cycles = %d", m.Stats.BySub[SubList])
	}
}

func TestSquashingBranch(t *testing.T) {
	// A loop whose back-edge is a squashing branch: taken iterations run
	// the loop head's first instructions in the delay slots (copied there
	// by fillSquashSlots); the final not-taken execution annuls them.
	a := NewAsm()
	main := a.NewLabel("main")
	loop := a.NewLabel("loop")
	a.Bind(main)
	a.Li(10, 0) // sum
	a.Li(11, 1) // i
	a.Bind(loop)
	a.Add(10, 10, 11) // sum += i
	a.Addi(11, 11, 1)
	a.Li(12, 10)
	a.Raw(Instr{Op: BLE, Rs1: 11, Rs2: 12, Target: int(loop), Squash: true})
	a.Halt()
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1024, HWConfig{TrapHandler: -1, CheckFailHandler: -1})
	m.MaxCycles = 1000
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[10] != 55 {
		t.Errorf("sum = %d, want 55", m.Regs[10])
	}
	if m.Stats.Squashed != 2 {
		t.Errorf("squashed = %d, want 2 (one annulled slot pair on exit)", m.Stats.Squashed)
	}
}

func TestSquashFillFromTarget(t *testing.T) {
	// The slots of a squashing back-edge should hold copies of the loop
	// head instructions, not no-ops.
	a := NewAsm()
	main := a.NewLabel("main")
	loop := a.NewLabel("loop")
	a.Bind(main)
	a.Li(10, 0)
	a.Li(11, 1)
	a.Bind(loop)
	a.Add(10, 10, 11)
	a.Addi(11, 11, 1)
	a.Li(12, 10)
	a.Raw(Instr{Op: BLE, Rs1: 11, Rs2: 12, Target: int(loop), Squash: true})
	a.Halt()
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	var br int = -1
	for i := range p.Instrs {
		if p.Instrs[i].Op == BLE {
			br = i
		}
	}
	if br < 0 {
		t.Fatal("no BLE found")
	}
	if p.Instrs[br+1].Op == NOP && p.Instrs[br+2].Op == NOP {
		t.Error("squash slots were not filled from the target")
	}
	if p.Instrs[br].Target == p.Labels["loop"] {
		t.Error("branch was not retargeted past the copied instructions")
	}
}

func TestFinishErrors(t *testing.T) {
	a := NewAsm()
	main := a.NewLabel("main")
	missing := a.NewLabel("missing")
	a.Bind(main)
	a.Jmp(missing)
	if _, err := a.Finish("main"); err == nil {
		t.Error("unbound label: expected error")
	}
	a2 := NewAsm()
	l := a2.NewLabel("x")
	a2.Bind(l)
	a2.Halt()
	if _, err := a2.Finish("nope"); err == nil {
		t.Error("missing entry: expected error")
	}
}

func TestMaxCycles(t *testing.T) {
	_, err := buildRunErr(t, HWConfig{}, func(a *Asm) {
		loop := a.NewLabel("spin")
		a.Bind(loop)
		a.Jmp(loop)
	})
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("err = %v, want cycle limit fault", err)
	}
}

func TestDisasmSmoke(t *testing.T) {
	a := NewAsm()
	main := a.NewLabel("main")
	a.Bind(main)
	a.Li(10, 5)
	a.Cat(CatTagCheck, SubList)
	a.Bteq(10, 3, main)
	a.Work()
	a.Halt()
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	s := DisasmProgram(p)
	for _, want := range []string{"main:", "li r10, 5", "bteq", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestFloatOps(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Li(10, 3)
		a.Li(11, 4)
		a.Itof(12, 10)
		a.Itof(13, 11)
		a.Fadd(14, 12, 13)
		a.Fmul(15, 12, 13)
		a.Fdiv(16, 13, 12)
		a.Ftoi(17, 14) // 7
		a.Ftoi(18, 15) // 12
		a.Ftoi(19, 16) // 1 (4/3 truncated)
		a.Flt(20, 12, 13)
		a.Feq(21, 12, 12)
		a.Halt()
	})
	if m.Regs[17] != 7 || m.Regs[18] != 12 || m.Regs[19] != 1 {
		t.Errorf("float arith = %d %d %d", m.Regs[17], m.Regs[18], m.Regs[19])
	}
	if m.Regs[20] != 1 || m.Regs[21] != 1 {
		t.Errorf("float compare = %d %d", m.Regs[20], m.Regs[21])
	}
}

func TestImmediateBranches(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		l1 := a.NewLabel("l1")
		l2 := a.NewLabel("l2")
		bad := a.NewLabel("bad")
		a.Li(10, 5)
		a.Beqi(10, 5, l1)
		a.Jmp(bad)
		a.Bind(l1)
		a.Blti(10, 6, l2)
		a.Jmp(bad)
		a.Bind(l2)
		a.Li(11, 1)
		a.Halt()
		a.Bind(bad)
		a.Li(11, 0)
		a.Halt()
	})
	if m.Regs[11] != 1 {
		t.Error("immediate branches took wrong path")
	}
}

func TestReturnAddressIsByteScaled(t *testing.T) {
	// Raw return addresses must always look like aligned byte addresses
	// (low two bits zero) so the GC can treat them as fixnums under every
	// tag scheme.
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		fn := a.NewLabel("fn")
		out := a.NewLabel("out")
		a.Jal(fn)
		a.Jmp(out)
		a.Bind(fn)
		a.Mov(10, RRA)
		a.Jr(RRA)
		a.Bind(out)
		a.Halt()
	})
	if m.Regs[10]&3 != 0 {
		t.Errorf("RA = %#x, want low bits clear", m.Regs[10])
	}
	if m.Regs[10] == 0 {
		t.Error("RA not captured")
	}
}

func TestProfileAttributesCycles(t *testing.T) {
	a := NewAsm()
	main := a.NewLabel("main")
	fn := a.NewLabel("fn:busy")
	done := a.NewLabel("fn:done")
	a.Bind(main)
	a.Li(10, 0)
	a.Jal(fn)
	a.Jmp(done)
	a.Bind(fn)
	loop := a.NewLabel("")
	a.Li(11, 100)
	a.Bind(loop)
	a.Addi(10, 10, 1)
	a.Bne(10, 11, loop)
	a.Jr(RRA)
	a.Bind(done)
	a.Halt()
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1024, HWConfig{TrapHandler: -1, CheckFailHandler: -1})
	m.MaxCycles = 100000
	prof := NewProfile(p, func(name string) bool { return name == "fn:busy" || name == "fn:done" || name == "main" })
	if err := m.RunProfiled(prof); err != nil {
		t.Fatal(err)
	}
	top := prof.Top(3)
	if len(top) == 0 || top[0].Name != "fn:busy" {
		t.Fatalf("hottest region = %+v, want fn:busy", top)
	}
	var sum uint64
	for _, c := range prof.Cycles {
		sum += c
	}
	if sum != m.Stats.Cycles {
		t.Errorf("profile sums to %d, machine ran %d cycles", sum, m.Stats.Cycles)
	}
	if s := prof.Format(2, m.Stats.Cycles); !strings.Contains(s, "fn:busy") {
		t.Errorf("Format output missing region: %s", s)
	}
}

func TestCheckFailHandlerPath(t *testing.T) {
	// An LDC tag mismatch must vector to the configured handler with the
	// offending item in RT0.
	a := NewAsm()
	main := a.NewLabel("main")
	handler := a.NewLabel("handler")
	a.Bind(main)
	a.Li(10, int32(uint32(2)<<27|0x200)) // symbol-tagged item
	a.Ldc(11, 10, 0, 1)                  // expects pair tag
	a.Li(12, 111)                        // skipped: handler halts
	a.Halt()
	a.Bind(handler)
	a.Mov(13, RT0)
	a.Halt()
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	hw := HWConfig{TagShift: 27, TagMask: 31, MemAddrMask: 0x07FFFFFF,
		TrapHandler: -1, CheckFailHandler: p.Labels["handler"]}
	m := NewMachine(p, 4096, hw)
	m.MaxCycles = 1000
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Regs[13] != uint32(2)<<27|0x200 {
		t.Errorf("handler saw offender %#x", m.Regs[13])
	}
	if m.Regs[12] == 111 {
		t.Error("execution continued past the failed check")
	}
	if m.Stats.Traps != 1 {
		t.Errorf("traps = %d", m.Stats.Traps)
	}
}

func TestSysGCNotify(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		a.Li(RRet, 128)
		a.Sys(SysGCNotify)
		a.Li(RRet, 64)
		a.Sys(SysGCNotify)
		a.Halt()
	})
	if m.Stats.GCs != 2 || m.Stats.GCWords != 192 {
		t.Errorf("GCs=%d words=%d", m.Stats.GCs, m.Stats.GCWords)
	}
}

func TestSignedBranchVariants(t *testing.T) {
	m := buildRun(t, HWConfig{}, func(a *Asm) {
		le := a.NewLabel("le")
		gt := a.NewLabel("gt")
		out := a.NewLabel("out")
		a.Li(10, -5)
		a.Li(11, 3)
		a.Ble(10, 11, le)
		a.Li(12, 0)
		a.Jmp(out)
		a.Bind(le)
		a.Li(12, 1)
		a.Bgt(11, 10, gt)
		a.Li(13, 0)
		a.Jmp(out)
		a.Bind(gt)
		a.Li(13, 1)
		a.Bind(out)
		a.Halt()
	})
	if m.Regs[12] != 1 || m.Regs[13] != 1 {
		t.Errorf("ble/bgt signed compare failed: %d %d", m.Regs[12], m.Regs[13])
	}
}

func TestTagCyclesHelper(t *testing.T) {
	var s Stats
	s.ByCat[CatTagInsert] = 1
	s.ByCat[CatTagRemove] = 2
	s.ByCat[CatTagExtract] = 3
	s.ByCat[CatTagCheck] = 4
	s.ByCat[CatWork] = 100
	if got := s.TagCycles(); got != 10 {
		t.Errorf("TagCycles = %d", got)
	}
	if Pct(10, 0) != 0 {
		t.Error("Pct with zero total must be 0")
	}
	if Pct(25, 100) != 25 {
		t.Error("Pct arithmetic")
	}
}

func TestLdtOutOfRangeReadsZero(t *testing.T) {
	// Tag-ignoring loads never fault: a wild masked address reads zero.
	m := buildRun(t, HWConfig{MemAddrMask: 0x07FFFFFF}, func(a *Asm) {
		a.Li(10, 0x07FFF000) // far beyond the test machine's memory
		a.Li(11, 77)
		a.Ldt(11, 10, 0)
		a.Halt()
	})
	if m.Regs[11] != 0 {
		t.Errorf("out-of-range ldt = %d, want 0", m.Regs[11])
	}
}

func TestDisasmAllOps(t *testing.T) {
	// Every opcode must render without panicking.
	for op := NOP; op < numOps; op++ {
		in := Instr{Op: op, Rd: 3, Rs1: 4, Rs2: 5, Imm: 7, Tag: 2, Target: 0}
		if s := Disasm(&in, nil); s == "" {
			t.Errorf("empty disassembly for %v", op)
		}
	}
}
