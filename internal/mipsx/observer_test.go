package mipsx

import (
	"testing"
)

type eventLog struct{ events []Event }

func (l *eventLog) Event(e Event) { l.events = append(l.events, e) }

type noopObs struct{}

func (noopObs) Event(Event) {}

// buildObserverProg assembles a program that produces every observable
// event kind: taken branches, a call and return, an unconditional jump,
// output syscalls, a GC notification, an arithmetic trap with a handler
// that trap-returns, and a halt.
func buildObserverProg(t *testing.T) (*Program, HWConfig) {
	t.Helper()
	a := NewAsm()
	main := a.NewLabel("main")
	loop := a.NewLabel("loop")
	skip := a.NewLabel("skip")
	fdouble := a.NewLabel("fn:double")
	handler := a.NewLabel("sys:trap")
	a.Bind(main)
	a.Li(10, 0)
	a.Li(13, 0)
	a.Bind(loop)
	a.Addi(10, 10, 2)
	a.Addi(13, 13, 1)
	a.Blti(13, 8, loop)
	a.Jal(fdouble)
	a.Jmp(skip)
	a.Addi(10, 10, 100) // dead code jumped over
	a.Bind(skip)
	a.Mov(RRet, 10)
	a.Sys(SysPutInt)
	a.Li(RRet, 7)
	a.Sys(SysGCNotify)
	a.Li(20, int32(uint32(1)<<27|5)) // tagged non-integer item
	a.Addtc(21, 20, 20)              // traps into the handler
	a.Mov(RRet, 21)
	a.Sys(SysPutInt)
	a.Halt()
	a.Bind(fdouble)
	a.Add(10, 10, 10)
	a.Jr(31)
	a.Bind(handler)
	a.Li(22, 42)
	a.Li(23, TrapResultAddr)
	a.St(22, 23, 0)
	a.Sys(SysTrapReturn)
	p, err := a.Finish("main")
	if err != nil {
		t.Fatal(err)
	}
	hw := HWConfig{TagShift: 27, TagMask: 31, IsIntItem: isInt27,
		TrapHandler: p.Labels["sys:trap"], CheckFailHandler: -1}
	return p, hw
}

// TestNoopObserverLeavesRunIdentical is the differential guarantee behind
// the observer hook: attaching an observer must not change a single
// architectural or statistical bit of a fused-engine run.
func TestNoopObserverLeavesRunIdentical(t *testing.T) {
	p, hw := buildObserverProg(t)

	bare := NewMachine(p, 1024, hw)
	bare.MaxCycles = 1_000_000
	if err := bare.Run(); err != nil {
		t.Fatal(err)
	}

	observed := NewMachine(p, 1024, hw)
	observed.MaxCycles = 1_000_000
	observed.Obs = noopObs{}
	if err := observed.Run(); err != nil {
		t.Fatal(err)
	}

	if bare.Stats != observed.Stats {
		t.Errorf("stats diverge:\nbare:     %+v\nobserved: %+v", bare.Stats, observed.Stats)
	}
	if bare.Regs != observed.Regs {
		t.Errorf("registers diverge:\nbare:     %v\nobserved: %v", bare.Regs, observed.Regs)
	}
	if bare.PC != observed.PC {
		t.Errorf("final PC diverges: bare %d, observed %d", bare.PC, observed.PC)
	}
	if bare.Output.String() != observed.Output.String() {
		t.Errorf("output diverges: bare %q, observed %q", bare.Output.String(), observed.Output.String())
	}
	for i := range bare.Mem {
		if bare.Mem[i] != observed.Mem[i] {
			t.Errorf("memory diverges at word %d: bare %#x, observed %#x", i, bare.Mem[i], observed.Mem[i])
			break
		}
	}
	if got := bare.Output.String(); got != "3242" {
		t.Errorf("program output %q, want \"3242\"", got)
	}
}

// TestEventStreamParity asserts the fused engine's control-flow event
// stream — kinds, cycle stamps, PCs, targets, arguments — is exactly the
// reference engine's stream with the per-instruction events removed.
func TestEventStreamParity(t *testing.T) {
	p, hw := buildObserverProg(t)

	var fusedLog eventLog
	fused := NewMachine(p, 1024, hw)
	fused.MaxCycles = 1_000_000
	fused.Obs = &fusedLog
	if err := fused.Run(); err != nil {
		t.Fatal(err)
	}

	var refLog eventLog
	ref := NewMachine(p, 1024, hw)
	ref.MaxCycles = 1_000_000
	ref.Obs = &refLog
	if err := ref.RunReference(); err != nil {
		t.Fatal(err)
	}

	var refCtl []Event
	for _, e := range refLog.events {
		if e.Kind != EvInstr {
			refCtl = append(refCtl, e)
		}
	}
	if len(refCtl) == len(refLog.events) {
		t.Error("reference engine emitted no EvInstr events")
	}
	if len(fusedLog.events) != len(refCtl) {
		t.Fatalf("event count diverges: fused %d, reference %d (non-instr)",
			len(fusedLog.events), len(refCtl))
	}
	for i := range refCtl {
		if fusedLog.events[i] != refCtl[i] {
			t.Errorf("event %d diverges:\nfused: %+v\nref:   %+v", i, fusedLog.events[i], refCtl[i])
		}
	}
}

func TestEventStreamContents(t *testing.T) {
	p, hw := buildObserverProg(t)
	var log eventLog
	m := NewMachine(p, 1024, hw)
	m.MaxCycles = 1_000_000
	m.Obs = &log
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	counts := make(map[EventKind]int)
	var last uint64
	for _, e := range log.events {
		counts[e.Kind]++
		if e.Cycle < last {
			t.Errorf("cycle stamps not monotonic: %d after %d", e.Cycle, last)
		}
		last = e.Cycle
	}
	for kind, wantMin := range map[EventKind]int{
		EvBranch:  7, // seven taken back-edges
		EvCall:    1,
		EvReturn:  1,
		EvJump:    1,
		EvSyscall: 2,
		EvGC:      1,
		EvTrap:    1,
		EvTrapRet: 1,
		EvHalt:    1,
	} {
		if counts[kind] < wantMin {
			t.Errorf("%v events: got %d, want >= %d", kind, counts[kind], wantMin)
		}
	}
	if m.Stats.GCs != 1 || m.Stats.GCWords != 7 {
		t.Errorf("GC stats = %d/%d, want 1/7", m.Stats.GCs, m.Stats.GCWords)
	}
	if m.Stats.Traps != 1 {
		t.Errorf("Traps = %d, want 1", m.Stats.Traps)
	}
}

func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EvInstr:   "instr",
		EvBranch:  "branch",
		EvTrapRet: "trapret",
		EvHalt:    "halt",
	} {
		if got := kind.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
	if got := EventKind(200).String(); got == "" {
		t.Error("out-of-range EventKind should still render")
	}
}

func TestErrorCodeName(t *testing.T) {
	for code, want := range map[int32]string{
		ErrNotPair:      "not-a-pair",
		ErrUser:         "user-error",
		ErrHeapOverflow: "heap-overflow",
		ErrWrongTypeHW:  "wrong-type",
		99:              "error-99",
	} {
		if got := ErrorCodeName(code); got != want {
			t.Errorf("ErrorCodeName(%d) = %q, want %q", code, got, want)
		}
	}
}
