package mipsx

// Superblock formation for the native engine.
//
// A superblock is a straight-line path of hot chained blocks flattened into
// one specialized step stream: each element contributes its body steps, a
// conditional terminator contributes one edge pseudo-step that bails out of
// the stream when the branch resolves against the formed direction, and the
// terminator's delay slots ride along as ordinary steps (omitted entirely
// when the hot direction annuls them). One complete run of the stream
// charges the whole path with a single counter increment and a single
// precomputed cycle addition; the counter expands back into per-block body
// and direction counts at flush, which the translated engine's existing
// expansion then turns into exact per-instruction statistics. A side exit
// spills the completed prefix into the per-block counters immediately and
// resumes on the cold direction through the ordinary per-block path.
//
// Formation is seeded by the per-block execution counters: when a block's
// body count crosses the hot threshold on some machine, that machine walks
// the block's hot successors (unconditional jumps, falls, and conditional
// branches whose sampled direction is decisive) and publishes the stream
// program-wide. MaxCycles safety is a conservative entry guard: the stream
// is only entered when even its most expensive path cannot cross the cycle
// limit, so the in-stream steps need no limit checks; near the limit the
// runner stays on the per-block path, which faults exactly where the
// translated engine would.

import (
	"sync/atomic"
	"time"
)

const (
	// sbHotThreshold is the per-machine body count that triggers formation;
	// a head whose formation failed (typically for lack of direction
	// evidence this early) is retried with 8× and then 64× the warmup, by
	// which point the per-block counters have matured.
	sbHotThreshold = 32
	// sbRetrySlow is the body-count cadence (a power of two) at which
	// formation keeps being retried after the staged early attempts have
	// failed. An anchor can become formable arbitrarily late — most often
	// when a reformation upstream shortens a stream and leaves its tail
	// running per-block — so attempts are never exhausted, only spaced out.
	sbRetrySlow = 4096
	// sbMaxElems bounds a superblock's length; sbMinElems rejects degenerate
	// single-block "paths" not worth the stream overhead.
	sbMaxElems = 256
	sbMinElems = 2
	// sbMinDirSamples is the evidence needed before a conditional branch's
	// direction is trusted; the minority direction must stay under a quarter
	// of the samples for the edge to be considered decisive.
	sbMinDirSamples = 16
	// sbMaxPerProg caps the superblocks formed for one program.
	sbMaxPerProg = 1024
	// sbReformCheck is the per-site side-exit cadence (a power of two) at
	// which a superblock is checked for a stale direction; sbMaxReforms
	// bounds the replacement streams formed from one head so an inherently
	// unstable branch cannot thrash formation.
	sbReformCheck = 1024
	sbMaxReforms  = 4
)

// sbRetryAt reports whether a head's body count has just crossed the
// formation threshold for attempt number a (0-based).
func sbRetryAt(a int32, body uint64) bool {
	switch a {
	case 0:
		return body == sbHotThreshold
	case 1:
		return body == sbHotThreshold*8
	case 2:
		return body == sbHotThreshold*64
	}
	return body&(sbRetrySlow-1) == 0
}

// sbElem is one block's contribution to a superblock.
type sbElem struct {
	b        *tblock
	hotTaken bool // direction the stream follows (termCond/termJump/termJumpInd)
	hasDir   bool // false for termFall, which bumps no direction counter
	// jrTgt is the matched target pc of a termJumpInd element; jrStall
	// records that jumping there triggers the slot-2 load interlock the
	// translator cannot resolve statically, so each full run of this
	// element charges one extra stall (folded into the cycle sums at
	// formation, credited to the stall statistics at expansion).
	jrTgt   int32
	jrStall bool
	// cycBefore is the cycles charged by a full hot execution of every
	// element before this one, used to reconstruct exact cycle counts at
	// side exits and faults.
	cycBefore uint64
	// Half-open step ranges of this element in the flat stream: body steps
	// in [stepLo, slotLo), delay-slot steps in [slotLo, stepHi).
	stepLo, slotLo, stepHi int32
	// elided counts the check sites the dataflow pass removed from this
	// element's steps; each element run skipped that many host-side
	// checks, counted into NativeStats.ElidedChecks at expansion (the
	// simulated statistics are static per element and never change).
	elided uint16
}

// sblock is one formed superblock. Per-machine execution counters index by
// exit site: nctr[exitBase+j] counts stream executions that left at
// element j (having fully executed elements [0, j)), and
// nctr[exitBase+len(elems)] counts complete runs — so a side exit is one
// counter bump, not a walk over its prefix, and the expansion at flush
// reconstructs every element's run count from one suffix sum.
type sblock struct {
	idx      int32 // dense index into nativeProg.sbs
	exitBase int32 // this superblock's slice of Machine.nctr
	elems    []sbElem
	steps    []tstep
	fullCyc  uint64 // cycles charged by one complete run
	maxCyc   uint64 // worst-case cycles any path through the stream charges
	nextPC   int32  // where execution continues after a complete run
	next     atomic.Pointer[tblock]
	// termB is set when the last element is terminal: a block whose
	// terminator direction the walk could not predict, riding along
	// body-only. A complete run then resumes at its terminator through the
	// ordinary machinery instead of chaining to nextPC.
	termB *tblock
	// reforms counts how many stale predecessors this stream has replaced
	// (see maybeReform).
	reforms int32
	// chain is the stream compiled into a register-caching closure chain
	// (sbchain.go), with ca/cb the two cached registers; nil unless the
	// SBOpt.RegCache opt-in is set and the stream has enough specialized
	// coverage, in which case the runner dispatches steps through
	// execSteps. chainCov counts the specialized steps, for introspection.
	chain    sbfn
	ca, cb   uint8
	chainCov int32
	// Static dataflow-pass results, for introspection: check sites
	// removed or weakened, redundant pure steps dropped, and the unit
	// count before optimization.
	elidedChecks int32
	droppedSteps int32
	rawSteps     int32
}

// hotOutcome picks the direction a superblock would follow out of b on
// machine m, or nil when the terminator is unsuitable or the evidence is
// not decisive.
func (m *Machine) hotOutcome(b *tblock) (o *outcome, hotTaken, hasDir bool) {
	t := &b.term
	switch t.kind {
	case termFall:
		return &t.fall, false, false
	case termJump:
		return &t.taken, true, true
	case termCond:
		if int(b.id) >= len(m.bctr) {
			return nil, false, false
		}
		c := &m.bctr[b.id]
		tk, fl := c.taken, c.fall
		minor := fl
		hotTaken = tk >= fl
		if !hotTaken {
			minor = tk
		}
		if tk+fl < sbMinDirSamples || 4*minor > tk+fl {
			return nil, false, false
		}
		if hotTaken {
			return &t.taken, true, true
		}
		return &t.fall, false, true
	}
	return nil, false, false
}

// formSuperblock walks the hot path from head using m's counters, builds
// the flat stream, and publishes it. Returns nil when no viable path
// exists. Caller holds p.tmu.
func (p *Program) formSuperblock(m *Machine, head *tblock, np *nativeProg) *sblock {
	t0 := time.Now()
	defer func() { p.nativeNS.Add(time.Since(t0).Nanoseconds()) }()
	var old []*sblock
	if lp := np.sbs.Load(); lp != nil {
		old = *lp
	}
	if len(old) >= sbMaxPerProg {
		return nil
	}

	type walked struct {
		b        *tblock
		o        *outcome
		hotTaken bool
		hasDir   bool
		isJr     bool
		jrTgt    int32
		jrStall  bool
	}
	var path []walked
	// terminal is set when the walk stops at a block whose terminator
	// direction it cannot predict (a balanced or cold conditional, an
	// unguessable indirect jump, a syscall): the block still rides along
	// body-only as the stream's last element, so its body runs at stream
	// speed and a complete run resumes at its terminator through the
	// ordinary machinery.
	var terminal *tblock
	// rstack tracks the call structure of the walked path: a linking jump
	// pushes its return address, and a jr through RA pops it — the return
	// target of a call made inside the stream is known exactly, not
	// guessed from the icache (returns are polymorphic across call sites,
	// so the icache's promoted target would mispredict for every call
	// site but the first).
	var rstack []int32
	b := head
	for len(path) < sbMaxElems {
		var w walked
		var npc int32
		if t := &b.term; t.kind == termJumpInd {
			var tgt int32 = -1
			if !t.link && t.rs1 == RRA && len(rstack) > 0 {
				tgt = rstack[len(rstack)-1]
				rstack = rstack[:len(rstack)-1]
			} else if ce := t.icache.Load(); ce != nil {
				// An indirect call or an unmatched return: the hot
				// target is whatever the chaining icache promoted; the
				// stream guards on it and side-exits when the register
				// disagrees.
				tgt = ce.pc
			}
			if tgt < 0 {
				terminal = b
				break
			}
			w = walked{b: b, o: &t.taken, hotTaken: true, hasDir: true,
				isJr: true, jrTgt: tgt}
			w.jrStall = !t.slotsNop && t.taken.s2wmask != 0 &&
				uint(tgt) < uint(len(p.dec)) &&
				p.dec[tgt].readMask&t.taken.s2wmask != 0
			npc = tgt
		} else {
			o, hotTaken, hasDir := m.hotOutcome(b)
			if o == nil {
				terminal = b
				break
			}
			w = walked{b: b, o: o, hotTaken: hotTaken, hasDir: hasDir}
			npc = o.nextPC
		}
		if b.term.link {
			rstack = append(rstack, int32(int(b.term.pc)+1+delaySlots))
		}
		path = append(path, w)
		if uint(npc) >= uint(len(p.tblocks)) {
			break
		}
		nb := p.tblocks[npc].Load()
		if nb == nil {
			break
		}
		// Revisited blocks are allowed: a path that closes into a loop
		// keeps walking around it, unrolling the loop into the stream up
		// to the element cap. A full run of an unrolled loop covers
		// several iterations with one counter bump, and the iteration
		// count never divides the unroll factor evenly for free — the
		// final partial pass leaves through an ordinary side exit.
		b = nb
	}
	elemCount := len(path)
	if terminal != nil {
		elemCount++
	}
	if elemCount < sbMinElems {
		return nil
	}

	sb := &sblock{idx: int32(len(old))}
	dec := p.dec
	var units []sbUnit
	bodyUnits := func(b *tblock, elem int) {
		for pc := int(b.start); pc < int(b.start)+int(b.bodyLen); pc++ {
			if d := &dec[pc]; d.op != NOP {
				units = append(units, sbUnit{s: singleStep(d, pc), elem: int32(elem)})
			}
		}
	}
	var cyc, maxCyc uint64
	for j, w := range path {
		t := &w.b.term
		e := sbElem{
			b: w.b, hotTaken: w.hotTaken, hasDir: w.hasDir,
			jrTgt: w.jrTgt, jrStall: w.jrStall, cycBefore: cyc,
		}
		bodyUnits(w.b, j)
		switch t.kind {
		case termCond:
			hot := uint8(0)
			if w.hotTaken {
				hot = 1
			}
			units = append(units, sbUnit{s: tstep{
				kind: edgeKind(t.op), rd: uint8(t.op), rs1: t.rs1, rs2: t.rs2,
				tag: t.tag, imm: t.imm, rd2: uint8(j), rs3: hot, off: t.pc,
			}, elem: int32(j)})
		case termJumpInd:
			// Guard first, then the link write: the jump register is read
			// before a jalr clobbers RA, exactly as in the fused loop. A
			// jalr fuses the two into one step (kEdgeJrL).
			es := tstep{
				kind: kEdgeJr, rs1: t.rs1,
				imm: int32(uint32(w.jrTgt) << 2), rd2: uint8(j), off: t.pc,
			}
			if t.link {
				es.kind = kEdgeJrL
				es.imm2 = int32(uint32(int(t.pc)+1+delaySlots) << 2)
			}
			units = append(units, sbUnit{s: es, elem: int32(j)})
		case termJump:
			if t.link {
				units = append(units, sbUnit{s: tstep{
					kind: uint8(LI), n: 1, rd: RRA,
					imm: int32(uint32(int(t.pc)+1+delaySlots) << 2), off: t.pc,
				}, elem: int32(j)})
			}
		}
		if t.kind != termFall && !w.o.annul && !t.slotsNop {
			for i := range t.slots {
				if s := &t.slots[i]; s.kind != uint8(NOP) {
					units = append(units, sbUnit{s: *s, elem: int32(j), slot: true})
				}
			}
		}
		sb.elems = append(sb.elems, e)
		cyc += w.b.bodyCyc + w.o.cyc
		worst := t.taken.cyc
		if t.fall.cyc > worst {
			worst = t.fall.cyc
		}
		if w.jrStall {
			cyc++
			worst++
		}
		maxCyc += w.b.bodyCyc + worst
		sb.nextPC = npcOf(w.o, w.isJr, w.jrTgt)
	}
	if terminal != nil {
		sb.elems = append(sb.elems, sbElem{b: terminal, cycBefore: cyc})
		bodyUnits(terminal, len(path))
		cyc += terminal.bodyCyc
		maxCyc += terminal.bodyCyc
		sb.termB = terminal
	}
	sb.fullCyc, sb.maxCyc = cyc, maxCyc

	// The dataflow pass: elision, cross-element refusion, edge fusion.
	sopt := CurSBOpt()
	opt := optimizeUnits(units, len(sb.elems), &np.spec, sopt)
	sb.steps = opt.steps
	sb.elidedChecks = opt.elidedChecks
	sb.droppedSteps = opt.droppedSteps
	sb.rawSteps = opt.rawUnits
	for j := range sb.elems {
		e := &sb.elems[j]
		e.stepLo, e.slotLo, e.stepHi = opt.stepLo[j], opt.slotLo[j], opt.stepHi[j]
		e.elided = opt.elided[j]
	}
	if sopt.RegCache {
		sb.chain, sb.ca, sb.cb, sb.chainCov = compileChain(sb.steps, &np.spec)
	}
	sb.exitBase = np.exitLen.Load()
	np.exitLen.Store(sb.exitBase + int32(len(sb.elems)) + 1)

	list := make([]*sblock, len(old)+1)
	copy(list, old)
	list[len(old)] = sb
	np.sbs.Store(&list)
	return sb
}

// npcOf is where execution continues after a full hot execution of an
// element: the outcome's static successor, or the matched target for an
// indirect jump (whose outcome has no static successor).
func npcOf(o *outcome, isJr bool, jrTgt int32) int32 {
	if isJr {
		return jrTgt
	}
	return o.nextPC
}

// growBctr returns the counter cell for block id, growing the per-machine
// array (with headroom) when execution or expansion reaches a block past
// its current size.
func (m *Machine) growBctr(id int32) *blockCtr {
	if int(id) >= len(m.bctr) {
		grown := make([]blockCtr, int(id)+64)
		copy(grown, m.bctr)
		m.bctr = grown
	}
	return &m.bctr[id]
}

// creditJrStall credits n occurrences of an indirect-jump element's
// slot-2 load interlock to the stall statistics (the extra cycle itself is
// folded into the superblock's cycle sums at formation).
func (m *Machine) creditJrStall(e *sbElem, n uint64) {
	if !e.jrStall {
		return
	}
	s2 := e.b.term.slot2
	st := &m.Stats
	st.Stalls += n
	st.ByCat[s2.cat] += n
	if s2.rtCheck {
		st.ByRTSub[s2.sub] += n
	}
}

// markSBExit records one stream execution of sb that left at element j —
// after fully executing elements [0, j) — growing the per-machine exit
// counters (with headroom) when a superblock formed after this machine was
// created is counted for the first time. j == len(elems) marks a complete
// run.
func (m *Machine) markSBExit(sb *sblock, j int32) {
	i := int(sb.exitBase) + int(j)
	if i >= len(m.nctr) {
		need := m.Prog.nat.Load().exitLen.Load()
		grown := make([]uint64, int(need)+64)
		copy(grown, m.nctr)
		m.nctr = grown
	}
	m.nctr[i]++
}

// maybeReform replaces a superblock whose guarded direction at element j
// has gone stale. Formation locks directions in from early samples; when a
// branch's behavior shifts, one exit site starts absorbing most entries
// and the stream aborts there forever. Every sbReformCheck exits at one
// site, the machine compares that site's count against the runs that made
// it past the element; when the exits dominate, it folds the exit counters
// into the per-block evidence — which then reflects the directions the
// aborted runs actually took — and forms a replacement stream from the
// same head. The stale stream stays registered (its remaining counters
// expand normally at flush); only the head's anchor moves.
func (m *Machine) maybeReform(sb *sblock, j int32) {
	base := int(sb.exitBase)
	exits := m.nctr[base+int(j)]
	if exits&(sbReformCheck-1) != 0 || sb.reforms >= sbMaxReforms {
		return
	}
	hi := base + len(sb.elems)
	if hi >= len(m.nctr) {
		hi = len(m.nctr) - 1
	}
	var past uint64
	for k := base + int(j) + 1; k <= hi; k++ {
		past += m.nctr[k]
	}
	if exits <= 2*past {
		return
	}
	head := sb.elems[0].b
	bn := head.nat.Load()
	if bn == nil || bn.sb.Load() != sb {
		return
	}
	p := m.Prog
	np := p.nat.Load()
	if np == nil {
		return
	}
	m.expandSBCtrs()
	p.tmu.Lock()
	if bn.sb.Load() == sb {
		if nsb := p.formSuperblock(m, head, np); nsb != nil {
			nsb.reforms = sb.reforms + 1
			bn.sb.Store(nsb)
			m.Native.SuperBlocks++
		}
	}
	p.tmu.Unlock()
}

// expandSBCtrs folds the per-machine superblock exit-site counters into
// the per-block counters, from which the shared flush expansion
// reconstructs exact per-instruction statistics. An execution that left at
// element j ran every element before j, so element k's run count is the
// suffix sum of the exits past it. Called at flush before the per-block
// expansion. Each element run also executed that element's optimized
// steps, so its elided host-side checks accumulate into the engine
// counters here (they have no effect on the simulated statistics, which
// are static per element).
func (m *Machine) expandSBCtrs() {
	np := m.Prog.nat.Load()
	if np == nil {
		return
	}
	lp := np.sbs.Load()
	if lp == nil {
		return
	}
	for _, sb := range *lp {
		base := int(sb.exitBase)
		last := base + len(sb.elems)
		// The counters may stop short of this superblock's range: markSBExit
		// grows them only when the marked slot itself overflows, so exits at
		// early elements can land in a previous grow's headroom while the
		// range's tail lies past the end. Slots past the end were provably
		// never marked (marking one would have grown the array past it), so
		// the scan clamps to the allocated length rather than skipping.
		if last >= len(m.nctr) {
			last = len(m.nctr) - 1
		}
		if last < base {
			continue
		}
		var runs uint64
		for k := last; k > base; k-- {
			runs += m.nctr[k]
			m.nctr[k] = 0
			if runs == 0 {
				continue
			}
			e := &sb.elems[k-1-base]
			c := m.growBctr(e.b.id)
			c.body += runs
			if e.elided != 0 {
				m.Native.ElidedChecks += runs * uint64(e.elided)
			}
			if e.hasDir {
				if e.hotTaken {
					c.taken += runs
				} else {
					c.fall += runs
				}
			}
			m.creditJrStall(e, runs)
		}
		m.nctr[base] = 0
	}
}
