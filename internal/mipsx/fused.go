package mipsx

import (
	"context"
	"math"
	"strconv"
)

// pendIdle is the "no branch pending" sentinel for the fused loop's
// delay-slot countdown: negative and far from zero, so the unconditional
// per-instruction decrement cannot reach zero within any bounded run.
const pendIdle = -1 << 40

// Run executes until HALT, a fault, a Lisp runtime error, MaxCycles, or
// cancellation of Ctx.
//
// This is the production engine: a single fused dispatch loop over the
// predecoded instruction stream. The program counter, branch-pipeline
// state and the hot cycle counters live in locals for the whole run and
// are flushed back into the Machine on every exit, load-interlock stalls
// are charged by the load itself peeking at its successor, so the loop
// performs no Go calls and no allocations per simulated instruction.
// It produces exactly the same architectural state, statistics and output
// as the reference single-step path (Step / RunReference) — a property the
// differential tests assert — with one deliberate divergence: the
// MaxCycles limit is enforced at control transfers and trap entries rather
// than after every instruction, so a runaway run can overshoot the limit
// by one straight-line run of code before faulting.
func (m *Machine) Run() error {
	dec := m.Prog.predecode()
	r := &m.Regs
	mem := m.Mem
	tagShift, tagMask := m.HW.TagShift, m.HW.TagMask
	memAddrMask := m.HW.MemAddrMask
	memtagBase, memtagShift, memtagLimit := m.HW.MemtagBase, m.HW.MemtagShift, m.HW.MemtagLimit
	isIntItem := m.HW.IsIntItem
	trapCycles := m.HW.TrapCycles
	maxCycles := m.MaxCycles
	st := &m.Stats
	// Cancellation state: with a nil Ctx the next-poll threshold is
	// unreachable, so the cost is one compare per control transfer.
	var ctx context.Context
	nextCancel := ^uint64(0)
	if m.Ctx != nil {
		ctx = m.Ctx
		nextCancel = st.Cycles // poll on the first control transfer
	}
	var cancelErr error
	// The observer is consulted only on control-flow events (branches,
	// jumps, traps, syscalls), which already leave the straight-line
	// dispatch path, so a nil observer costs the per-instruction path
	// nothing and the zero-allocation property is preserved.
	obsv := m.Obs

	// Hot machine state, kept in locals until exit.
	halted := m.halted
	pc := m.PC
	pendTarget := m.pendTarget
	pendSquash := m.pendSquash
	// pendCount counts down to the pending branch redirect. Idle is a
	// large negative sentinel rather than zero so the advance tail can
	// decrement unconditionally and test for zero with a single
	// rarely-taken branch.
	pendCount := m.pendCount
	if pendCount == 0 {
		pendCount = pendIdle
	}
	cycles := st.Cycles
	instrs := st.Instrs

	// Per-instruction execution counts. The loop below bumps one counter
	// per executed instruction; the flush after the loop reconstructs the
	// per-category / per-opcode statistics from the counts and the
	// predecoded costs, keeping the hot path to a single increment.
	if len(m.execCounts) < len(dec) {
		m.execCounts = make([]uint64, len(dec))
	}
	counts := m.execCounts[:len(dec)]

	// Annulled-slot count, folded into the statistics on exit.
	var squashed uint64

	// Failure state for the single exit path below; failargs allocates
	// only when a fault actually occurs.
	var failf string
	var failargs []any

	if halted {
		goto flush
	}

	// Interlock carried over from a prior Step: inside the loop the load
	// cases charge the stall by peeking at their successor, so a pending
	// interlock only exists across the Step/Run boundary. Consume it here,
	// mirroring Step's ordering (annulled slots never stall, and an
	// out-of-range PC faults before the interlock is considered).
	if m.lastLoadReg != RZero {
		if !pendSquash && uint(pc) < uint(len(dec)) &&
			dec[pc].readMask&(1<<m.lastLoadReg) != 0 {
			ld := &dec[m.lastLoad]
			cycles++
			st.Stalls++
			st.ByCat[ld.cat]++
			if ld.rtCheck {
				st.ByRTSub[ld.sub]++
			}
		}
		m.lastLoadReg = RZero
	}
loop:
	for {
		if uint(pc) >= uint(len(dec)) {
			failf = "pc out of range"
			break loop
		}
		d := &dec[pc]

		// Annulled delay slot of a squashing branch that was not taken.
		if pendSquash {
			cycles++
			squashed++
			pc++
			pendCount--
			if pendCount == 0 {
				if pendTarget >= 0 {
					pc = pendTarget
				}
				pendTarget = -1
				pendSquash = false
				pendCount = pendIdle
			}
			continue
		}

		cycles += uint64(d.cycles)
		counts[pc]++

		// MOV is by far the most frequent opcode in compiled Lisp code
		// (~20% dynamically); testing for it directly keeps those
		// dispatches off the switch's indirect jump.
		if d.op == MOV {
			r[d.rd&31] = r[d.rs1&31]
			r[RZero] = 0
			pc++
			pendCount--
			if pendCount == 0 {
				if pendTarget >= 0 {
					pc = pendTarget
				}
				pendTarget = -1
				pendSquash = false
				pendCount = pendIdle
			}
			continue
		}

		switch d.op {
		case NOP:
		case MOV:
			r[d.rd&31] = r[d.rs1&31]
		case LI:
			r[d.rd&31] = uint32(d.imm)
		case ADD:
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) + int32(r[d.rs2&31]))
		case ADDI:
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) + d.imm)
		case SUB:
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) - int32(r[d.rs2&31]))
		case AND:
			r[d.rd&31] = r[d.rs1&31] & r[d.rs2&31]
		case ANDI:
			r[d.rd&31] = r[d.rs1&31] & uint32(d.imm)
		case OR:
			r[d.rd&31] = r[d.rs1&31] | r[d.rs2&31]
		case ORI:
			r[d.rd&31] = r[d.rs1&31] | uint32(d.imm)
		case XOR:
			r[d.rd&31] = r[d.rs1&31] ^ r[d.rs2&31]
		case XORI:
			r[d.rd&31] = r[d.rs1&31] ^ uint32(d.imm)
		case SLL:
			r[d.rd&31] = r[d.rs1&31] << (r[d.rs2&31] & 31)
		case SLLI:
			r[d.rd&31] = r[d.rs1&31] << (uint32(d.imm) & 31)
		case SRL:
			r[d.rd&31] = r[d.rs1&31] >> (r[d.rs2&31] & 31)
		case SRLI:
			r[d.rd&31] = r[d.rs1&31] >> (uint32(d.imm) & 31)
		case SRA:
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) >> (r[d.rs2&31] & 31))
		case SRAI:
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) >> (uint32(d.imm) & 31))
		case MUL:
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) * int32(r[d.rs2&31]))
		case FADD:
			r[d.rd&31] = math.Float32bits(math.Float32frombits(r[d.rs1&31]) + math.Float32frombits(r[d.rs2&31]))
		case FSUB:
			r[d.rd&31] = math.Float32bits(math.Float32frombits(r[d.rs1&31]) - math.Float32frombits(r[d.rs2&31]))
		case FMUL:
			r[d.rd&31] = math.Float32bits(math.Float32frombits(r[d.rs1&31]) * math.Float32frombits(r[d.rs2&31]))
		case FDIV:
			r[d.rd&31] = math.Float32bits(math.Float32frombits(r[d.rs1&31]) / math.Float32frombits(r[d.rs2&31]))
		case FLT:
			if math.Float32frombits(r[d.rs1&31]) < math.Float32frombits(r[d.rs2&31]) {
				r[d.rd&31] = 1
			} else {
				r[d.rd&31] = 0
			}
		case FEQ:
			if math.Float32frombits(r[d.rs1&31]) == math.Float32frombits(r[d.rs2&31]) {
				r[d.rd&31] = 1
			} else {
				r[d.rd&31] = 0
			}
		case ITOF:
			r[d.rd&31] = math.Float32bits(float32(int32(r[d.rs1&31])))
		case FTOI:
			r[d.rd&31] = uint32(int32(math.Float32frombits(r[d.rs1&31])))
		case DIV:
			if r[d.rs2&31] == 0 {
				failf = "division by zero"
				break loop
			}
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) / int32(r[d.rs2&31]))
		case REM:
			if r[d.rs2&31] == 0 {
				failf = "division by zero"
				break loop
			}
			r[d.rd&31] = uint32(int32(r[d.rs1&31]) % int32(r[d.rs2&31]))

		case LD:
			addr := uint32(int32(r[d.rs1&31]) + d.imm)
			if addr&3 != 0 {
				failf, failargs = "misaligned load at %#x", []any{addr}
				break loop
			}
			if int(addr>>2) >= len(mem) {
				failf, failargs = "load out of range at %#x", []any{addr}
				break loop
			}
			r[d.rd&31] = mem[addr>>2]
			// Interlock: peek at the instruction that executes next (the
			// pending branch target when this load fills the last delay
			// slot) and charge the stall to this load now. This keeps the
			// interlock test out of the per-instruction dispatch path.
			next := pc + 1
			if pendCount == 1 {
				next = pendTarget
			}
			if uint(next) < uint(len(dec)) && dec[next].readMask&d.wmask != 0 {
				cycles++
				st.Stalls++
				st.ByCat[d.cat]++
				if d.rtCheck {
					st.ByRTSub[d.sub]++
				}
			}
		case ST:
			addr := uint32(int32(r[d.rs1&31]) + d.imm)
			if addr&3 != 0 {
				failf, failargs = "misaligned store at %#x", []any{addr}
				break loop
			}
			if int(addr>>2) >= len(mem) {
				failf, failargs = "store out of range at %#x", []any{addr}
				break loop
			}
			mem[addr>>2] = r[d.rs2&31]
		case LDT:
			// Tag-ignoring loads cannot fault: the hardware masks the tag
			// bits and the low address bits, and a wild (but masked)
			// address just reads whatever the bus returns.
			addr := uint32(int32(r[d.rs1&31])+d.imm) & memAddrMask &^ 3
			var v uint32
			if int(addr>>2) < len(mem) {
				v = mem[addr>>2]
			}
			r[d.rd&31] = v
			next := pc + 1
			if pendCount == 1 {
				next = pendTarget
			}
			if uint(next) < uint(len(dec)) && dec[next].readMask&d.wmask != 0 {
				cycles++
				st.Stalls++
				st.ByCat[d.cat]++
				if d.rtCheck {
					st.ByRTSub[d.sub]++
				}
			}
		case STT:
			addr := uint32(int32(r[d.rs1&31])+d.imm) & memAddrMask &^ 3
			if int(addr>>2) >= len(mem) {
				failf, failargs = "store out of range at %#x", []any{addr}
				break loop
			}
			mem[addr>>2] = r[d.rs2&31]
		case LDM, STM:
			addr := uint32(int32(r[d.rs1&31])+d.imm) & memAddrMask &^ 3
			if addr < memtagLimit {
				ca := mem[(memtagBase+(addr>>memtagShift)<<2)>>2]
				viol := ca == 0
				if !viol {
					cb := d.tag
					if cb == RZero {
						cb = d.rs1
					}
					b := r[cb&31] & memAddrMask &^ 3
					viol = b>>memtagShift != addr>>memtagShift && b < memtagLimit &&
						mem[(memtagBase+(b>>memtagShift)<<2)>>2] != ca
				}
				if viol {
					// Granule check failed: enter the memory-safety error path.
					if m.HW.MemtagFailHandler < 0 {
						failf, failargs = "memtag granule check failed: item %#x, addr %#x", []any{r[d.rs1&31], addr}
						break loop
					}
					r[RT0] = r[d.rs1&31]
					r[RT1] = addr
					cycles += trapCycles
					st.Traps++
					if obsv != nil {
						obsv.Event(Event{Kind: EvTrap, Cycle: cycles, PC: int32(pc),
							Target: int32(m.HW.MemtagFailHandler), Arg: addr})
					}
					pendTarget, pendCount, pendSquash = -1, pendIdle, false
					pc = m.HW.MemtagFailHandler
					if maxCycles != 0 && cycles > maxCycles {
						failf, failargs = "cycle limit %d exceeded", []any{maxCycles}
						break loop
					}
					if cycles >= nextCancel {
						if cancelErr = ctx.Err(); cancelErr != nil {
							break loop
						}
						nextCancel = cycles + cancelCheckCycles
					}
					continue
				}
			}
			if int(addr>>2) >= len(mem) {
				if d.op == LDM {
					failf, failargs = "load out of range at %#x", []any{addr}
				} else {
					failf, failargs = "store out of range at %#x", []any{addr}
				}
				break loop
			}
			if d.op == LDM {
				r[d.rd&31] = mem[addr>>2]
				next := pc + 1
				if pendCount == 1 {
					next = pendTarget
				}
				if uint(next) < uint(len(dec)) && dec[next].readMask&d.wmask != 0 {
					cycles++
					st.Stalls++
					st.ByCat[d.cat]++
					if d.rtCheck {
						st.ByRTSub[d.sub]++
					}
				}
			} else {
				mem[addr>>2] = r[d.rs2&31]
			}

		case LDC, STC:
			if uint8((r[d.rs1&31]>>tagShift)&tagMask) != d.tag {
				// Tag mismatch: enter the type-error path.
				if m.HW.CheckFailHandler < 0 {
					failf, failargs = "checked access tag mismatch: item %#x, want tag %d", []any{r[d.rs1&31], d.tag}
					break loop
				}
				r[RT0] = r[d.rs1&31]
				r[RT1] = uint32(d.tag)
				cycles += trapCycles
				st.Traps++
				if obsv != nil {
					obsv.Event(Event{Kind: EvTrap, Cycle: cycles, PC: int32(pc),
						Target: int32(m.HW.CheckFailHandler), Arg: uint32(d.tag)})
				}
				pendTarget, pendCount, pendSquash = -1, pendIdle, false
				pc = m.HW.CheckFailHandler
				if maxCycles != 0 && cycles > maxCycles {
					failf, failargs = "cycle limit %d exceeded", []any{maxCycles}
					break loop
				}
				if cycles >= nextCancel {
					if cancelErr = ctx.Err(); cancelErr != nil {
						break loop
					}
					nextCancel = cycles + cancelCheckCycles
				}
				continue
			}
			addr := uint32(int32(r[d.rs1&31])+d.imm) & memAddrMask
			if addr&3 != 0 {
				if d.op == LDC {
					failf, failargs = "misaligned load at %#x", []any{addr}
				} else {
					failf, failargs = "misaligned store at %#x", []any{addr}
				}
				break loop
			}
			if int(addr>>2) >= len(mem) {
				if d.op == LDC {
					failf, failargs = "load out of range at %#x", []any{addr}
				} else {
					failf, failargs = "store out of range at %#x", []any{addr}
				}
				break loop
			}
			if d.op == LDC {
				r[d.rd&31] = mem[addr>>2]
				next := pc + 1
				if pendCount == 1 {
					next = pendTarget
				}
				if uint(next) < uint(len(dec)) && dec[next].readMask&d.wmask != 0 {
					cycles++
					st.Stalls++
					st.ByCat[d.cat]++
					if d.rtCheck {
						st.ByRTSub[d.sub]++
					}
				}
			} else {
				mem[addr>>2] = r[d.rs2&31]
			}

		case ADDTC, SUBTC:
			if isIntItem == nil {
				failf, failargs = "%s without integer-test hardware", []any{d.op}
				break loop
			}
			a, b := r[d.rs1&31], r[d.rs2&31]
			var s64 int64
			if d.op == ADDTC {
				s64 = int64(int32(a)) + int64(int32(b))
			} else {
				s64 = int64(int32(a)) - int64(int32(b))
			}
			res := uint32(s64)
			if !isIntItem(a) || !isIntItem(b) ||
				s64 != int64(int32(res)) || !isIntItem(res) {
				// Failed parallel check: enter the software trap handler.
				if m.HW.TrapHandler < 0 {
					failf, failargs = "unhandled arithmetic trap (%v %#x %#x)", []any{d.op, a, b}
					break loop
				}
				if pendCount > 0 {
					failf = "arithmetic trap in delay slot"
					break loop
				}
				mem[TrapOpAddr>>2] = uint32(d.op)
				mem[TrapAAddr>>2] = a
				mem[TrapBAddr>>2] = b
				mem[TrapRdAddr>>2] = uint32(d.rd)
				mem[TrapPCAddr>>2] = uint32(pc + 1)
				cycles += trapCycles
				st.Traps++
				if obsv != nil {
					obsv.Event(Event{Kind: EvTrap, Cycle: cycles, PC: int32(pc),
						Target: int32(m.HW.TrapHandler), Arg: uint32(d.op)})
				}
				pc = m.HW.TrapHandler
				if maxCycles != 0 && cycles > maxCycles {
					failf, failargs = "cycle limit %d exceeded", []any{maxCycles}
					break loop
				}
				if cycles >= nextCancel {
					if cancelErr = ctx.Err(); cancelErr != nil {
						break loop
					}
					nextCancel = cycles + cancelCheckCycles
				}
				continue
			}
			r[d.rd&31] = res

		case BEQ, BNE, BLT, BGE, BLE, BGT, BEQI, BNEI, BLTI, BGEI, BTEQ, BTNE:
			if pendCount > 0 {
				failf = "branch in delay slot"
				break loop
			}
			var taken bool
			switch d.op {
			case BEQ:
				taken = r[d.rs1&31] == r[d.rs2&31]
			case BNE:
				taken = r[d.rs1&31] != r[d.rs2&31]
			case BLT:
				taken = int32(r[d.rs1&31]) < int32(r[d.rs2&31])
			case BGE:
				taken = int32(r[d.rs1&31]) >= int32(r[d.rs2&31])
			case BLE:
				taken = int32(r[d.rs1&31]) <= int32(r[d.rs2&31])
			case BGT:
				taken = int32(r[d.rs1&31]) > int32(r[d.rs2&31])
			case BEQI:
				taken = int32(r[d.rs1&31]) == d.imm
			case BNEI:
				taken = int32(r[d.rs1&31]) != d.imm
			case BLTI:
				taken = int32(r[d.rs1&31]) < d.imm
			case BGEI:
				taken = int32(r[d.rs1&31]) >= d.imm
			case BTEQ:
				taken = uint8((r[d.rs1&31]>>tagShift)&tagMask) == d.tag
			case BTNE:
				taken = uint8((r[d.rs1&31]>>tagShift)&tagMask) != d.tag
			}
			if taken && obsv != nil {
				obsv.Event(Event{Kind: EvBranch, Cycle: cycles,
					PC: int32(pc), Target: d.target})
			}
			if d.slotsNop {
				// Both delay slots are NOPs: consume them here instead
				// of dispatching two empty iterations. Annulled slots
				// count as squashed, executed ones as ordinary NOPs.
				cycles += 2
				if taken {
					counts[pc+1]++
					counts[pc+2]++
					pc = int(d.target)
				} else {
					if d.squash {
						squashed += 2
					} else {
						counts[pc+1]++
						counts[pc+2]++
					}
					pc += 3
				}
			} else {
				if taken {
					pendTarget = int(d.target)
					pendCount = delaySlots
				} else if d.squash {
					pendTarget = -1
					pendCount = delaySlots
					pendSquash = true
				}
				pc++
			}
			if maxCycles != 0 && cycles > maxCycles {
				failf, failargs = "cycle limit %d exceeded", []any{maxCycles}
				break loop
			}
			if cycles >= nextCancel {
				if cancelErr = ctx.Err(); cancelErr != nil {
					break loop
				}
				nextCancel = cycles + cancelCheckCycles
			}
			continue

		case JMP, JAL, JALR, JR:
			if pendCount > 0 {
				failf = "jump in delay slot"
				break loop
			}
			var t int
			switch d.op {
			case JMP:
				t = int(d.target)
			case JAL:
				r[RRA] = uint32(pc+1+delaySlots) << 2
				t = int(d.target)
			case JALR:
				if r[d.rs1&31]&3 != 0 {
					failf, failargs = "jalr to misaligned code address %#x", []any{r[d.rs1&31]}
					break loop
				}
				t = int(r[d.rs1&31] >> 2)
				r[RRA] = uint32(pc+1+delaySlots) << 2
			case JR:
				if r[d.rs1&31]&3 != 0 {
					failf, failargs = "jr to misaligned code address %#x", []any{r[d.rs1&31]}
					break loop
				}
				t = int(r[d.rs1&31] >> 2)
			}
			if obsv != nil {
				k := EvJump
				switch d.op {
				case JAL, JALR:
					k = EvCall
				case JR:
					k = EvReturn
				}
				obsv.Event(Event{Kind: k, Cycle: cycles,
					PC: int32(pc), Target: int32(t)})
			}
			if d.slotsNop {
				// Both delay slots are NOPs: consume them without
				// dispatching and redirect immediately.
				counts[pc+1]++
				counts[pc+2]++
				cycles += 2
				pc = t
			} else {
				pendTarget = t
				pendCount = delaySlots
				pc++
			}
			if maxCycles != 0 && cycles > maxCycles {
				failf, failargs = "cycle limit %d exceeded", []any{maxCycles}
				break loop
			}
			if cycles >= nextCancel {
				if cancelErr = ctx.Err(); cancelErr != nil {
					break loop
				}
				nextCancel = cycles + cancelCheckCycles
			}
			continue

		case SYS:
			switch d.imm {
			case SysHalt:
				halted = true
				if obsv != nil {
					obsv.Event(Event{Kind: EvHalt, Cycle: cycles,
						PC: int32(pc), Target: -1})
				}
				break loop
			case SysPutChar:
				m.Output.WriteByte(byte(r[RRet]))
				if obsv != nil {
					obsv.Event(Event{Kind: EvSyscall, Cycle: cycles,
						PC: int32(pc), Target: -1, Arg: uint32(d.imm)})
				}
			case SysPutInt:
				m.Output.WriteString(strconv.FormatInt(int64(int32(r[RRet])), 10))
				if obsv != nil {
					obsv.Event(Event{Kind: EvSyscall, Cycle: cycles,
						PC: int32(pc), Target: -1, Arg: uint32(d.imm)})
				}
			case SysError:
				st.ErrorCode = int32(r[RRet])
				st.ErrorItem = r[3]
				halted = true
				if obsv != nil {
					obsv.Event(Event{Kind: EvHalt, Cycle: cycles,
						PC: int32(pc), Target: -1, Arg: r[RRet]})
				}
				break loop
			case SysTrapReturn:
				if pendCount > 0 {
					failf = "trap return in delay slot"
					break loop
				}
				rd := mem[TrapRdAddr>>2]
				if rd >= 32 {
					failf, failargs = "bad trap destination register %d", []any{rd}
					break loop
				}
				if rd != RZero {
					r[rd] = mem[TrapResultAddr>>2]
				}
				cycles += trapCycles
				if obsv != nil {
					obsv.Event(Event{Kind: EvTrapRet, Cycle: cycles,
						PC: int32(pc), Target: int32(mem[TrapPCAddr>>2])})
				}
				pc = int(mem[TrapPCAddr>>2])
				if maxCycles != 0 && cycles > maxCycles {
					failf, failargs = "cycle limit %d exceeded", []any{maxCycles}
					break loop
				}
				if cycles >= nextCancel {
					if cancelErr = ctx.Err(); cancelErr != nil {
						break loop
					}
					nextCancel = cycles + cancelCheckCycles
				}
				continue
			case SysGCNotify:
				st.GCs++
				st.GCWords += uint64(r[RRet])
				if obsv != nil {
					obsv.Event(Event{Kind: EvGC, Cycle: cycles,
						PC: int32(pc), Target: -1, Arg: r[RRet]})
				}
			default:
				failf, failargs = "bad syscall %d", []any{d.imm}
				break loop
			}

		case HALT:
			halted = true
			if obsv != nil {
				obsv.Event(Event{Kind: EvHalt, Cycle: cycles,
					PC: int32(pc), Target: -1})
			}
			break loop

		default:
			failf, failargs = "bad opcode %v", []any{d.op}
			break loop
		}

		// The ALU/load cases above store results unconditionally instead
		// of branching on rd != RZero; restoring the hardwired zero here
		// keeps the architectural invariant at a store per instruction.
		r[RZero] = 0

		// Advance past the current instruction, retiring pending delay
		// slots (the counterpart of Machine.advance).
		pc++
		pendCount--
		if pendCount == 0 {
			if pendTarget >= 0 {
				pc = pendTarget
			}
			pendTarget = -1
			pendSquash = false
			pendCount = pendIdle
		}
	}

flush:
	// Flush the local machine state back so faults report the right
	// PC/cycle and a subsequent Step or inspection sees the same state the
	// reference engine would leave.
	m.halted = halted
	m.PC = pc
	if pendCount < 0 {
		pendCount = 0
	}
	m.pendTarget, m.pendCount, m.pendSquash = pendTarget, pendCount, pendSquash
	for i, c := range counts {
		if c == 0 {
			continue
		}
		counts[i] = 0
		d := &dec[i]
		cyc := c * uint64(d.cycles)
		instrs += c
		st.ByCat[d.cat] += cyc
		st.ByOp[d.op] += c
		if d.subbed {
			st.BySub[d.sub] += cyc
		}
		if d.rtCheck {
			st.ByRTSub[d.sub] += cyc
		}
	}
	st.ByCat[CatSquash] += squashed
	st.Squashed += squashed
	instrs += squashed
	st.Cycles, st.Instrs = cycles, instrs
	// m.lastLoadReg is deliberately left alone: the loop charges interlock
	// stalls at the load itself (peeking the successor), and every loop
	// exit dispatches a non-load last, so no interlock can be pending here.
	// The halted-entry path above must not clobber state Step left behind.

	if cancelErr != nil {
		return &Canceled{Cycle: st.Cycles, Err: cancelErr}
	}
	if failf != "" {
		return m.fault(failf, failargs...)
	}
	if st.ErrorCode != 0 {
		return &RuntimeError{Code: st.ErrorCode, Item: st.ErrorItem}
	}
	return nil
}
