package mipsx

// Engine introspection: a read-only summary of a Program's lazily built
// translation and native-compilation state, safe to take while machines
// are running (everything here is read through the same atomics the
// engines publish with). The numbers describe the shared per-Program
// caches — block formation, superinstruction fusion, chain and
// inline-cache fill — not any one machine's run; per-run execution
// counters live in TransStats/NativeStats.

// EngineIntrospection is the snapshot returned by Program.Introspect.
type EngineIntrospection struct {
	// Instrs is the length of the resolved instruction stream.
	Instrs int `json:"instrs"`
	// Blocks is the number of translated basic blocks; InstrsCovered the
	// source instructions their bodies cover (terminators excluded).
	Blocks        int `json:"blocks"`
	InstrsCovered int `json:"instrs_covered"`
	// BodySteps counts dispatch steps across all block bodies; FusedSteps
	// of those are superinstructions covering two or more source
	// instructions (fusion quality = FusedSteps/BodySteps).
	BodySteps  int `json:"body_steps"`
	FusedSteps int `json:"fused_steps"`
	// ChainedEdges counts terminator edges (taken + fall-through) whose
	// chain pointer has been filled, out of 2×Blocks possible.
	ChainedEdges int `json:"chained_edges"`
	// IndirectTerms is the number of blocks ending in an indirect jump;
	// ICachedTerms of those have a populated inline target cache.
	IndirectTerms int `json:"indirect_terms"`
	ICachedTerms  int `json:"icached_terms"`
	// NativeBlocks is the number of blocks with a compiled closure chain;
	// SuperBlocks the superblocks formed over hot chains, flattening
	// SuperBlockElems block elements in total.
	NativeBlocks    int `json:"native_blocks"`
	SuperBlocks     int `json:"superblocks"`
	SuperBlockElems int `json:"superblock_elems"`
	// Superblock dataflow-pass totals across all formed streams: the unit
	// count before optimization, the steps that survived it, the check
	// sites removed or weakened (tag and granule checks proved redundant
	// by the availability analysis), and the redundant pure steps dropped.
	SBRawSteps     int `json:"sb_raw_steps"`
	SBSteps        int `json:"sb_steps"`
	SBElidedChecks int `json:"sb_elided_checks"`
	SBDroppedSteps int `json:"sb_dropped_steps"`
	// Register-cache chain coverage: streams compiled into caching chains
	// (opt-in, see SBOpt.RegCache) and the steps they specialize.
	SBChains        int `json:"sb_chains"`
	SBChainCovSteps int `json:"sb_chain_cov_steps"`
	// TranslateUS and NativeCompileUS are the cumulative wall time the
	// lazy JIT phases have consumed for this program, in microseconds.
	TranslateUS     float64 `json:"translate_us"`
	NativeCompileUS float64 `json:"native_compile_us"`
}

// Introspect summarizes the program's translated-block and native caches.
func (p *Program) Introspect() EngineIntrospection {
	ei := EngineIntrospection{Instrs: len(p.Instrs)}
	tNS, nNS := p.JITTimes()
	ei.TranslateUS = float64(tNS.Nanoseconds()) / 1e3
	ei.NativeCompileUS = float64(nNS.Nanoseconds()) / 1e3
	if lp := p.blist.Load(); lp != nil {
		for _, b := range *lp {
			ei.Blocks++
			ei.InstrsCovered += int(b.bodyLen)
			ei.BodySteps += len(b.steps)
			ei.FusedSteps += int(b.fusedN)
			if b.term.tnext.Load() != nil {
				ei.ChainedEdges++
			}
			if b.term.fnext.Load() != nil {
				ei.ChainedEdges++
			}
			if b.term.kind == termJumpInd {
				ei.IndirectTerms++
				if b.term.icache.Load() != nil {
					ei.ICachedTerms++
				}
			}
			if b.nat.Load() != nil {
				ei.NativeBlocks++
			}
		}
	}
	if np := p.nat.Load(); np != nil {
		if lp := np.sbs.Load(); lp != nil {
			for _, sb := range *lp {
				ei.SuperBlocks++
				ei.SuperBlockElems += len(sb.elems)
				ei.SBRawSteps += int(sb.rawSteps)
				ei.SBSteps += len(sb.steps)
				ei.SBElidedChecks += int(sb.elidedChecks)
				ei.SBDroppedSteps += int(sb.droppedSteps)
				if sb.chain != nil {
					ei.SBChains++
					ei.SBChainCovSteps += int(sb.chainCov)
				}
			}
		}
	}
	return ei
}
