package mipsx

import "fmt"

// Engine selects one of the four execution engines. The zero value is the
// block-translating engine, making it the default everywhere a caller does
// not ask for something else.
type Engine uint8

const (
	// EngineTranslated is the basic-block translation engine (translate.go):
	// the predecoded stream is cut into straight-line blocks, recurring tag
	// idioms are fused into superinstructions, and translated blocks are
	// cached and chained. Falls back to the fused loop when an Observer or
	// Ctx is attached.
	EngineTranslated Engine = iota
	// EngineFused is the fused single-dispatch loop (fused.go).
	EngineFused
	// EngineReference is the single-step reference engine (sim.go).
	EngineReference
	// EngineNative is the closure-threaded engine (native.go): translated
	// blocks are compiled into chains of Go closures specialized on the
	// active hardware config, and hot chained-block paths are flattened
	// into superblocks executed with a single counter increment. Falls
	// back like the translated engine, and additionally to the translated
	// engine when the program is already natively compiled for a different
	// hardware config.
	EngineNative
)

var engineNames = [...]string{
	EngineTranslated: "translated",
	EngineFused:      "fused",
	EngineReference:  "reference",
	EngineNative:     "native",
}

func (e Engine) String() string {
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// EngineNames lists the accepted engine selector spellings.
var EngineNames = []string{"translated", "fused", "reference", "native"}

// ParseEngine parses an engine selector; the empty string selects the
// default (translated) engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "translated":
		return EngineTranslated, nil
	case "fused":
		return EngineFused, nil
	case "reference":
		return EngineReference, nil
	case "native":
		return EngineNative, nil
	}
	return EngineTranslated, fmt.Errorf("unknown engine %q (want translated, fused, reference or native)", s)
}

// RunEngine executes the program to completion on the selected engine.
// All four engines produce bit-identical architectural state, statistics
// and output; they differ only in speed and in observability (the
// reference engine emits per-instruction events, the fused loop emits
// control-flow events, the translated and native engines emit none and
// transparently fall back to the fused loop when an Observer or Ctx is
// attached).
func (m *Machine) RunEngine(e Engine) error {
	switch e {
	case EngineFused:
		return m.Run()
	case EngineReference:
		return m.RunReference()
	case EngineNative:
		return m.RunNative()
	default:
		return m.RunTranslated()
	}
}

// TransStats counts what the translated engine did during one Machine's
// runs: how many blocks this machine translated (first executions of a
// block populate the program-wide cache), how many block transitions were
// served by a direct chain pointer, how many RunTranslated calls fell back
// to the fused loop, and the dispatch-step mix (FusedSteps of Steps were
// superinstructions covering two source instructions).
type TransStats struct {
	Translated uint64 `json:"translated"`  // blocks translated into the program's cache by this machine
	BlockRuns  uint64 `json:"block_runs"`  // completed basic-block executions
	ChainHits  uint64 `json:"chain_hits"`  // block transitions resolved through a chain pointer
	Fallbacks  uint64 `json:"fallbacks"`   // RunTranslated calls that delegated to the fused loop
	Steps      uint64 `json:"steps"`       // dispatch steps executed in completed block bodies
	FusedSteps uint64 `json:"fused_steps"` // of those, fused superinstructions (two source instrs)
}

// Accumulate adds o's counters into t (the runner aggregates the
// machines that ran one cached image).
func (t *TransStats) Accumulate(o *TransStats) {
	t.Translated += o.Translated
	t.BlockRuns += o.BlockRuns
	t.ChainHits += o.ChainHits
	t.Fallbacks += o.Fallbacks
	t.Steps += o.Steps
	t.FusedSteps += o.FusedSteps
}

// NativeStats counts what the native engine did during one Machine's runs.
// BlockRuns/Steps/FusedSteps cover per-block executions, including the
// expanded contribution of superblock runs; SBRuns counts complete
// superblock stream executions (each covering several block runs) and
// SBSideExits the streams abandoned partway.
type NativeStats struct {
	Compiled    uint64 `json:"compiled"`      // blocks closure-compiled into the program's cache by this machine
	SuperBlocks uint64 `json:"superblocks"`   // superblocks formed by this machine
	BlockRuns   uint64 `json:"block_runs"`    // completed basic-block executions (superblock runs included)
	ChainHits   uint64 `json:"chain_hits"`    // block transitions resolved through a chain pointer
	Fallbacks   uint64 `json:"fallbacks"`     // RunNative calls that delegated to another engine
	SBRuns      uint64 `json:"sb_runs"`       // complete superblock stream executions
	SBSideExits uint64 `json:"sb_side_exits"` // superblock streams exited before completion
	SlowRuns    uint64 `json:"slow_runs"`     // block executions dispatched on the per-block path
	Steps       uint64 `json:"steps"`         // dispatch steps executed in completed block bodies
	FusedSteps  uint64 `json:"fused_steps"`   // of those, fused superinstructions (two source instrs)
	// ElidedChecks counts dynamically skipped host-side checks: tag or
	// granule checks the superblock dataflow pass proved redundant, times
	// the runs of the elements containing them. The simulated statistics
	// still charge every one of them (block accounting is static), so
	// this is purely a host-speed counter.
	ElidedChecks uint64 `json:"elided_checks"`
	// RegCacheSpills counts register spills at superblock chain exit
	// sites (register-caching closure chains write their cached
	// architectural registers back on every exit).
	RegCacheSpills uint64 `json:"regcache_spills"`
}

// Accumulate adds o's counters into n.
func (n *NativeStats) Accumulate(o *NativeStats) {
	n.Compiled += o.Compiled
	n.SuperBlocks += o.SuperBlocks
	n.BlockRuns += o.BlockRuns
	n.ChainHits += o.ChainHits
	n.Fallbacks += o.Fallbacks
	n.SBRuns += o.SBRuns
	n.SBSideExits += o.SBSideExits
	n.SlowRuns += o.SlowRuns
	n.Steps += o.Steps
	n.FusedSteps += o.FusedSteps
	n.ElidedChecks += o.ElidedChecks
	n.RegCacheSpills += o.RegCacheSpills
}
