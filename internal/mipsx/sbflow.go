package mipsx

// Superblock dataflow: value-numbering availability analysis, tag-check
// elision, and cross-block refusion over the flattened stream.
//
// formSuperblock rebuilds each element's body as single-instruction units
// straight from the predecoded stream and hands the whole flat sequence to
// optimizeUnits, which runs three passes:
//
//  1. Elision. A forward walk assigns every register a value number (a
//     congruence class: two operands with the same VN provably hold the
//     same word on this execution of the stream). Facts learned from
//     passed guards — "the edge at element 3 only lets values with tag 5
//     through" — are keyed on VNs, not registers, so nothing is killed by
//     register writes; a fact dies only when every register holding its
//     value has been overwritten, which the VN indirection tracks for
//     free. A tag check (LDC/STC, or the software srli/bnei idiom's
//     compare edge) dominated by an earlier identical check on the same
//     VN always passes — a failing dominator would have left the stream
//     first — so the repeat is elided: conditional edges are dropped
//     outright, checked accesses are weakened to unchecked kinds that
//     keep the access's masking and fault semantics bit-identical.
//     Memory-tagging granule checks (LDM/STM) get the same treatment from
//     a separate fact set that is invalidated by *any* store, because
//     granule colors live in simulated memory; a granule check is never
//     elided across a store. Pure recomputations whose destination
//     already holds the result VN are dropped too.
//
//     Elision never touches simulated statistics: block bodies are
//     charged statically per element run, so the reference-exact
//     expansion at flush charges every elided check's cycles and CatCheck
//     attribution exactly as if it had executed. What elision removes is
//     host dispatches, and those are counted honestly in
//     NativeStats.ElidedChecks via the same exit-site expansion.
//
//  2. Refusion. The surviving units are re-fused with the block
//     translator's peephole table, but across former block boundaries:
//     elision opens adjacencies (a dropped check puts its neighbors side
//     by side) that block-local fusion could never see. Memory-pair kinds
//     whose executors attribute faults to textually adjacent pcs are only
//     formed when the halves really are adjacent; pairs with a pure first
//     half borrow the step's otherwise-unused off field so the faultable
//     second half still reports its exact source pc.
//
//  3. Edge fusion. The hottest remaining dispatch shapes around guards
//     are collapsed: the software tag-check idiom's srli feeding a bnei
//     edge becomes one kEdgeSrliBnei step, a bnei edge followed by the
//     next element's leading and (the untag that follows a passed check)
//     becomes kEdgeBneiAnd with the and performed only after the guard
//     passes, and the jr+ADDI return fold from the original formation is
//     reapplied here.
//
// The pass runs only on superblock streams — private copies — never on
// the shared per-block steps the translated engine executes, so the
// engine being used as the speedup denominator is untouched.

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// SBOpt toggles individual superblock dataflow passes, for ablation
// benchmarks and the difftest dataflow-equivalence invariant. Settings
// affect superblocks formed after the call; build a fresh image (or
// Program) to measure a setting from a cold start.
//
// RegCache is an opt-in, not an opt-out: the register-caching closure
// chains (sbchain.go) are semantically exact but measurably slower than
// the switch dispatcher on this host (see the analysis in sbchain.go and
// the ablation table in EXPERIMENTS.md), so the default build leaves them
// off and the flag exists to measure them and to prove their
// bit-identity.
type SBOpt struct {
	NoElide  bool // keep every check and redundant op in the stream
	NoRefuse bool // fuse only within one element, original kinds only
	RegCache bool // dispatch streams through register-caching closure chains
}

var sbOptP atomic.Pointer[SBOpt]

// SetSBOpt installs o for subsequently formed superblocks.
func SetSBOpt(o SBOpt) { sbOptP.Store(&o) }

// CurSBOpt returns the current superblock dataflow settings.
func CurSBOpt() SBOpt {
	if p := sbOptP.Load(); p != nil {
		return *p
	}
	return SBOpt{}
}

// ParseSBOpt parses a comma-separated ablation list ("noelide,norefuse,
// regcache", empty for the defaults), the spelling the SIM_SBOPT
// environment variable and the benchmark harnesses use.
func ParseSBOpt(s string) (SBOpt, error) {
	var o SBOpt
	if s == "" {
		return o, nil
	}
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "":
		case "noelide":
			o.NoElide = true
		case "norefuse":
			o.NoRefuse = true
		case "regcache":
			o.RegCache = true
		default:
			return o, fmt.Errorf("unknown superblock ablation %q (want noelide, norefuse or regcache)", f)
		}
	}
	return o, nil
}

// sbUnit is one stream step during formation, tagged with the element it
// came from and whether it is a delay-slot step (slots never fuse with
// body or edge steps, so a slot fault keeps attributing to a slot pc).
type sbUnit struct {
	s    tstep
	elem int32
	slot bool
}

// sbOptResult is what optimizeUnits hands back to formSuperblock.
type sbOptResult struct {
	steps []tstep
	// Per-element unit ranges in steps, same convention as sbElem.
	stepLo, slotLo, stepHi []int32
	// Per-element count of checks elided from that element's units.
	elided []uint16
	// Static pass totals for introspection.
	elidedChecks int32 // check sites removed or weakened
	droppedSteps int32 // redundant pure units dropped
	rawUnits     int32 // units before optimization
}

// optimizeUnits runs elision, refusion and edge fusion over the stream.
func optimizeUnits(units []sbUnit, nElems int, sp *nspec, opt SBOpt) sbOptResult {
	res := sbOptResult{rawUnits: int32(len(units))}
	elided := make([]uint16, nElems)
	if !opt.NoElide {
		units = elideUnits(units, sp, elided, &res)
	}
	units = refuseUnits(units, !opt.NoRefuse)
	if !opt.NoRefuse {
		units = fuseEdgeUnits(units, elided, &res)
	}
	units = foldJrSlots(units)

	res.steps = make([]tstep, len(units))
	res.stepLo = make([]int32, nElems)
	res.slotLo = make([]int32, nElems)
	res.stepHi = make([]int32, nElems)
	res.elided = elided
	cur := int32(0)
	res.stepLo[0] = 0
	res.slotLo[0] = -1
	for i := range units {
		u := &units[i]
		for cur < u.elem {
			if res.slotLo[cur] < 0 {
				res.slotLo[cur] = int32(i)
			}
			res.stepHi[cur] = int32(i)
			cur++
			res.stepLo[cur] = int32(i)
			res.slotLo[cur] = -1
		}
		if u.slot && res.slotLo[cur] < 0 {
			res.slotLo[cur] = int32(i)
		}
		res.steps[i] = u.s
	}
	for {
		if res.slotLo[cur] < 0 {
			res.slotLo[cur] = int32(len(units))
		}
		res.stepHi[cur] = int32(len(units))
		cur++
		if int(cur) >= nElems {
			break
		}
		res.stepLo[cur] = int32(len(units))
		res.slotLo[cur] = -1
	}
	return res
}

// Fact kinds for the availability analysis. Every fact is a predicate over
// value numbers whose truth was established by a passed guard; branch
// opcodes canonicalize onto these five shapes (BNE is a negated BEQ, BGT
// a,b is LT(b,a), and so on).
const (
	fEQ    uint8 = iota // values a and b are equal
	fLT                 // signed a < b
	fEQI                // value a equals immediate
	fLTI                // signed a < immediate
	fTAGEQ              // tag field of value a equals immediate
)

type factKey struct {
	kind uint8
	a, b uint32
	imm  int32
}

// vnKey interns the result class of a pure operation.
type vnKey struct {
	op   uint8
	a, b uint32
	imm  int32
}

// mtKey identifies one granule check: the checked item's VN, the access
// offset, and the color-base register's VN. Kept in a set separate from
// the register facts because granule colors live in simulated memory:
// any store clears the whole set.
type mtKey struct {
	av, cv uint32
	imm    int32
}

// vnAn is the analysis state of one forward walk.
type vnAn struct {
	vn     [33]uint32 // current VN per working register (incl. RScratch)
	next   uint32
	tab    map[vnKey]uint32
	consts map[uint32]int32 // VNs with a known constant value
	facts  map[factKey]bool
	posTag map[uint32]uint8 // VN -> proven tag field (from a true fTAGEQ)
	posImm map[uint32]int32 // VN -> proven value (from a true fEQI)
	mt     map[mtKey]bool
	sp     *nspec
}

func newVNAn(sp *nspec) *vnAn {
	a := &vnAn{
		tab:    make(map[vnKey]uint32),
		consts: make(map[uint32]int32),
		facts:  make(map[factKey]bool),
		posTag: make(map[uint32]uint8),
		posImm: make(map[uint32]int32),
		mt:     make(map[mtKey]bool),
		sp:     sp,
	}
	for i := range a.vn {
		a.vn[i] = uint32(i)
	}
	a.next = uint32(len(a.vn))
	return a
}

func (a *vnAn) fresh() uint32 {
	v := a.next
	a.next++
	return v
}

func (a *vnAn) intern(k vnKey) uint32 {
	if v, ok := a.tab[k]; ok {
		return v
	}
	v := a.fresh()
	a.tab[k] = v
	return v
}

// constVN interns the VN of a known constant.
func (a *vnAn) constVN(v int32) uint32 {
	id := a.intern(vnKey{op: uint8(LI), imm: v})
	a.consts[id] = v
	return id
}

// killStores clears the granule-check facts; called for every store kind.
func (a *vnAn) killStores() {
	if len(a.mt) > 0 {
		clear(a.mt)
	}
}

// pureVN computes the result VN of a pure single-instruction step, folding
// constants where both operands are known. ok is false for ops the
// analysis does not model as droppable-pure.
func (a *vnAn) pureVN(s *tstep) (uint32, bool) {
	op := Op(s.kind)
	v1 := a.vn[s.rs1]
	switch op {
	case MOV:
		return v1, true
	case LI:
		return a.constVN(s.imm), true
	case ADDI, ORI, XORI, SLLI, SRLI, SRAI:
		if s.imm == 0 {
			return v1, true
		}
		fallthrough
	case ANDI:
		if c, ok := a.consts[v1]; ok {
			var r int32
			switch op {
			case ADDI:
				r = c + s.imm
			case ANDI:
				r = int32(uint32(c) & uint32(s.imm))
			case ORI:
				r = int32(uint32(c) | uint32(s.imm))
			case XORI:
				r = int32(uint32(c) ^ uint32(s.imm))
			case SLLI:
				r = int32(uint32(c) << (uint32(s.imm) & 31))
			case SRLI:
				r = int32(uint32(c) >> (uint32(s.imm) & 31))
			case SRAI:
				r = c >> (uint32(s.imm) & 31)
			}
			return a.constVN(r), true
		}
		return a.intern(vnKey{op: s.kind, a: v1, imm: s.imm}), true
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL,
		FADD, FSUB, FMUL, FDIV, FLT, FEQ:
		v2 := a.vn[s.rs2]
		switch op { // commutative ops get a canonical operand order
		case ADD, AND, OR, XOR, MUL, FADD, FMUL, FEQ:
			if v2 < v1 {
				v1, v2 = v2, v1
			}
		}
		return a.intern(vnKey{op: s.kind, a: v1, b: v2}), true
	case ITOF, FTOI:
		return a.intern(vnKey{op: s.kind, a: v1}), true
	case DIV, REM, ADDTC, SUBTC:
		// Faultable, but deterministic given the operands: reaching a
		// repeat proves the first did not fault, so a repeat with both
		// operand VNs unchanged is droppable like a pure op.
		v2 := a.vn[s.rs2]
		if op == ADDTC {
			if v2 < v1 {
				v1, v2 = v2, v1
			}
		}
		return a.intern(vnKey{op: s.kind, a: v1, b: v2}), true
	}
	return 0, false
}

// edgePred canonicalizes a conditional edge's predicate: the fact key, the
// sense relating the fact's truth to "branch taken", and the branch
// operands' validity.
func (a *vnAn) edgePred(op Op, s *tstep) (key factKey, sense bool, ok bool) {
	v1 := a.vn[s.rs1]
	switch op {
	case BEQ, BNE:
		v2 := a.vn[s.rs2]
		if v2 < v1 {
			v1, v2 = v2, v1
		}
		return factKey{kind: fEQ, a: v1, b: v2}, op == BEQ, true
	case BLT, BGE:
		return factKey{kind: fLT, a: v1, b: a.vn[s.rs2]}, op == BLT, true
	case BLE, BGT: // a<=b == !(b<a); a>b == b<a
		return factKey{kind: fLT, a: a.vn[s.rs2], b: v1}, op == BGT, true
	case BEQI, BNEI:
		return factKey{kind: fEQI, a: v1, imm: s.imm}, op == BEQI, true
	case BLTI, BGEI:
		return factKey{kind: fLTI, a: v1, imm: s.imm}, op == BLTI, true
	case BTEQ, BTNE:
		return factKey{kind: fTAGEQ, a: v1, imm: int32(s.tag)}, op == BTEQ, true
	}
	return factKey{}, false, false
}

// lookupFact resolves a fact's truth from recorded guards, proven values,
// and constants. The second result is false when the truth is unknown.
func (a *vnAn) lookupFact(k factKey) (bool, bool) {
	if v, ok := a.facts[k]; ok {
		return v, true
	}
	c1, ok1 := a.consts[k.a]
	switch k.kind {
	case fEQI:
		if v, ok := a.posImm[k.a]; ok {
			return v == k.imm, true
		}
		if ok1 {
			return c1 == k.imm, true
		}
	case fLTI:
		if v, ok := a.posImm[k.a]; ok {
			return v < k.imm, true
		}
		if ok1 {
			return c1 < k.imm, true
		}
	case fTAGEQ:
		if t, ok := a.posTag[k.a]; ok {
			return t == uint8(k.imm), true
		}
		v := uint32(0)
		if v2, ok := a.posImm[k.a]; ok {
			v, ok1 = uint32(v2), true
		} else if ok1 {
			v = uint32(c1)
		}
		if ok1 {
			return uint8((v>>a.sp.tagShift)&a.sp.tagMask) == uint8(k.imm), true
		}
	case fEQ, fLT:
		if k.a == k.b {
			return k.kind == fEQ, true
		}
		if c2, ok2 := a.consts[k.b]; ok1 && ok2 {
			if k.kind == fEQ {
				return c1 == c2, true
			}
			return c1 < c2, true
		}
	}
	return false, false
}

// recordFact stores a guard-established fact and its implications.
func (a *vnAn) recordFact(k factKey, val bool) {
	a.facts[k] = val
	if !val {
		return
	}
	switch k.kind {
	case fEQI:
		a.posImm[k.a] = k.imm
	case fTAGEQ:
		a.posTag[k.a] = uint8(k.imm)
	case fEQ:
		// Equality merges knowledge between the two classes.
		if v, ok := a.posImm[k.a]; ok {
			a.posImm[k.b] = v
		} else if v, ok := a.posImm[k.b]; ok {
			a.posImm[k.a] = v
		}
		if t, ok := a.posTag[k.a]; ok {
			a.posTag[k.b] = t
		} else if t, ok := a.posTag[k.b]; ok {
			a.posTag[k.a] = t
		}
	}
}

// elideUnits is the forward availability walk. It returns the surviving
// units, bumps elided[elem] for every check site removed or weakened, and
// fills the pass totals in res.
func elideUnits(units []sbUnit, sp *nspec, elided []uint16, res *sbOptResult) []sbUnit {
	a := newVNAn(sp)
	out := units[:0]
	for i := range units {
		u := units[i]
		s := &u.s
		if s.kind < uint8(numOps) {
			op := Op(s.kind)
			switch op {
			case LD:
				a.vn[s.rd] = a.fresh()
			case LDT:
				a.vn[s.rd] = a.fresh()
			case ST, STT:
				a.killStores()
			case LDC, STC:
				k := factKey{kind: fTAGEQ, a: a.vn[s.rs1], imm: int32(s.tag)}
				if v, known := a.lookupFact(k); known && v {
					if op == LDC {
						s.kind = kLdcNC
					} else {
						s.kind = kStcNC
					}
					elided[u.elem]++
					res.elidedChecks++
				} else if !known {
					a.recordFact(k, true)
				}
				if op == LDC {
					a.vn[s.rd] = a.fresh()
				} else {
					a.killStores()
				}
			case LDM, STM:
				cb := s.tag
				if cb == RZero {
					cb = s.rs1
				}
				k := mtKey{av: a.vn[s.rs1], cv: a.vn[cb], imm: s.imm}
				if a.mt[k] {
					if op == LDM {
						s.kind = kLdmNC
					} else {
						s.kind = kStmNC
					}
					elided[u.elem]++
					res.elidedChecks++
				} else if op == LDM {
					a.mt[k] = true
				}
				if op == LDM {
					a.vn[s.rd] = a.fresh()
				} else {
					a.killStores()
				}
			default:
				if nv, pure := a.pureVN(s); pure {
					if a.vn[s.rd] == nv {
						res.droppedSteps++
						continue
					}
					a.vn[s.rd] = nv
				} else {
					// Unmodelled register-writing op: invalidate rd.
					a.vn[s.rd] = a.fresh()
				}
			}
			out = append(out, u)
			continue
		}

		switch k := s.kind; {
		case k == kEdge || (k >= kEdgeOp0 && k < kEdgeOp0+12):
			op := Op(s.rd)
			if k != kEdge {
				op = BEQ + Op(k-kEdgeOp0)
			}
			key, sense, ok := a.edgePred(op, s)
			if !ok {
				out = append(out, u)
				continue
			}
			hot := s.rs3 != 0
			pass := sense == hot // fact value that lets the stream continue
			if v, known := a.lookupFact(key); known {
				if v == pass {
					// The guard provably resolves to the hot direction:
					// the edge can never fire.
					elided[u.elem]++
					res.elidedChecks++
					continue
				}
				// Provably exits: keep the edge, learn nothing past it.
				out = append(out, u)
				continue
			}
			a.recordFact(key, pass)
			out = append(out, u)

		case k == kEdgeJr || k == kEdgeJrL:
			key := factKey{kind: fEQI, a: a.vn[s.rs1], imm: s.imm}
			v, known := a.lookupFact(key)
			if known && v {
				elided[u.elem]++
				res.elidedChecks++
				if k == kEdgeJr {
					continue // guard implied, nothing else to do
				}
				// Keep the link write as a plain LI.
				li := tstep{kind: uint8(LI), n: s.n, rd: RRA, imm: s.imm2, off: s.off}
				a.vn[RRA] = a.constVN(s.imm2)
				out = append(out, sbUnit{s: li, elem: u.elem})
				continue
			}
			if !known {
				a.recordFact(key, true)
				a.vn[s.rs1] = a.constVN(s.imm)
			}
			if k == kEdgeJrL {
				a.vn[RRA] = a.constVN(s.imm2)
			}
			out = append(out, u)

		default:
			out = append(out, u)
		}
	}
	return out
}

// unitRunLen measures a packable save/restore run over units: the same
// rule as memRunLen, plus textual adjacency (the run executor attributes
// a slow-path fault to off+k).
func unitRunLen(units []sbUnit, i, end int) int {
	s0 := &units[i].s
	op := Op(s0.kind)
	if op != LD && op != ST {
		return 0
	}
	n := 1
	for n < 4 && i+n < end {
		s := &units[i+n].s
		if s.kind != s0.kind || s.rs1 != s0.rs1 ||
			s.imm != s0.imm+int32(4*n) || s.off != s0.off+int32(n) {
			break
		}
		if op == LD && units[i+n-1].s.rd == s0.rs1 {
			break
		}
		n++
	}
	if n < 3 {
		return 0
	}
	return n
}

// unitRunStep packs a measured run into one kLd3/kLd4/kSt3/kSt4 step.
func unitRunStep(units []sbUnit, i, n int) tstep {
	s0 := &units[i].s
	s := tstep{rs1: s0.rs1, imm: s0.imm, off: s0.off}
	var packed uint32
	var cover uint8
	for k := 0; k < n; k++ {
		e := &units[i+k].s
		reg := e.rd
		if Op(s0.kind) == ST {
			reg = e.rs2
		}
		packed |= uint32(reg) << (8 * k)
		cover += e.n
	}
	s.n = cover
	s.imm2 = int32(packed)
	switch {
	case Op(s0.kind) == LD && n == 3:
		s.kind = kLd3
	case Op(s0.kind) == LD && n == 4:
		s.kind = kLd4
	case Op(s0.kind) == ST && n == 3:
		s.kind = kSt3
	default:
		s.kind = kSt4
	}
	return s
}

// fuseUnitPair applies the translator's pair table to two stream units.
// Pairs whose executors touch memory in both halves attribute faults to
// off and off+1, so they require textual adjacency; a pure first half
// instead repositions off so the faultable second half keeps its exact pc.
func fuseUnitPair(s1, s2 *tstep, newKinds bool) (tstep, bool) {
	if s1.kind >= uint8(numOps) || s2.kind >= uint8(numOps) {
		return tstep{}, false
	}
	o1, o2 := Op(s1.kind), Op(s2.kind)
	var kind uint8
	switch {
	case o1 == SRLI && o2 == ANDI:
		kind = kSrliAndi
	case o1 == SLLI && o2 == ORI:
		kind = kSlliOri
	case o1 == MOV && o2 == MOV:
		kind = kMovMov
	case o1 == ANDI && o2 == LD:
		kind = kAndiLd
	case o1 == ADDI && o2 == LD:
		kind = kAddiLd
	case o1 == AND && o2 == LD && newKinds:
		kind = kAndLd
	case o1 == LD && o2 == LD:
		kind = kLdLd
	case o1 == ST && o2 == ST:
		kind = kStSt
	case o1 == MOV && o2 == LD:
		kind = kMovLd
	case o1 == LD && o2 == MOV:
		kind = kLdMov
	case o1 == LD && o2 == ST:
		kind = kLdSt
	case o1 == ST && o2 == LD:
		kind = kStLd
	case o1 == ST && o2 == MOV:
		kind = kStMov
	case o1 == MOV && o2 == ST:
		kind = kMovSt
	case o1 == ADDI && o2 == ST:
		kind = kAddiSt
	case o1 == LD && o2 == SRLI:
		kind = kLdSrli
	case o1 == MOV && o2 == SRLI:
		kind = kMovSrli
	case o1 == LD && o2 == ADDI:
		kind = kLdAddi
	case o1 == ST && o2 == LI:
		kind = kStLi
	case o1 == LI && o2 == OR:
		kind = kLiOr
	case o1 == OR && o2 == ADDI:
		kind = kOrAddi
	case o1 == SLLI && o2 == SRAI:
		kind = kSlliSrai
	default:
		return tstep{}, false
	}
	off := s1.off
	switch kind {
	case kLdLd, kStSt, kLdSt, kStLd:
		if s2.off != s1.off+1 {
			return tstep{}, false
		}
	case kAndiLd, kAddiLd, kAndLd, kMovLd, kMovSt, kAddiSt:
		off = s2.off - 1 // pure first half: fault pc is off+1 == s2.off
	}
	return tstep{
		kind: kind, n: s1.n + s2.n,
		rd: s1.rd, rs1: s1.rs1, rs2: s1.rs2, imm: s1.imm,
		rd2: s2.rd, rs3: s2.rs1, tag: s2.rs2, imm2: s2.imm,
		off: off,
	}, true
}

// refuseUnits re-fuses the stream. With cross set, regions of consecutive
// body units extend across element boundaries and the new pair kinds are
// allowed; otherwise fusion is element-local with the original table
// (the no-refusion ablation baseline, matching block-level fusion). Edge
// units always break regions; delay-slot units form their own regions so
// a slot never fuses with body or edge steps.
func refuseUnits(units []sbUnit, cross bool) []sbUnit {
	out := units[:0]
	for lo := 0; lo < len(units); {
		u0 := &units[lo]
		hi := lo + 1
		if u0.s.kind < uint8(numOps) {
			for hi < len(units) {
				u := &units[hi]
				if u.s.kind >= uint8(numOps) || u.slot != u0.slot ||
					(!cross && u.elem != u0.elem) ||
					(u0.slot && u.elem != u0.elem) {
					break
				}
				hi++
			}
		}
		out = refuseRegion(out, units, lo, hi, cross)
		lo = hi
	}
	return fuseUnitMovRuns(out)
}

// refuseRegion greedily packs [lo, hi): save/restore runs first, then
// pairs, then singles, mirroring fuseSteps.
func refuseRegion(out, units []sbUnit, lo, hi int, newKinds bool) []sbUnit {
	for i := lo; i < hi; {
		if n := unitRunLen(units, i, hi); n >= 3 {
			out = append(out, sbUnit{
				s: unitRunStep(units, i, n), elem: units[i].elem, slot: units[i].slot,
			})
			i += n
			continue
		}
		if i+1 < hi {
			if s, ok := fuseUnitPair(&units[i].s, &units[i+1].s, newKinds); ok {
				out = append(out, sbUnit{s: s, elem: units[i].elem, slot: units[i].slot})
				i += 2
				continue
			}
		}
		out = append(out, units[i])
		i++
	}
	return out
}

// fuseUnitMovRuns is the second-level mov merge from fuseMovRuns, applied
// to adjacent body units (slots excluded, as in block translation where
// slots never reach this pass).
func fuseUnitMovRuns(units []sbUnit) []sbUnit {
	out := units[:0]
	for i := 0; i < len(units); i++ {
		u := units[i]
		s := &u.s
		if i+1 < len(units) && !u.slot && !units[i+1].slot {
			t := &units[i+1].s
			switch {
			case s.kind == kMovMov && t.kind == kMovMov:
				s.kind = kMov4
				s.rs2, s.tag = t.rd, t.rs1
				s.imm = int32(uint32(t.rd2) | uint32(t.rs3)<<8)
				s.n += t.n
				i++
			case s.kind == kMovMov && t.kind == uint8(MOV):
				s.kind = kMov3
				s.rs2, s.tag = t.rd, t.rs1
				s.n += t.n
				i++
			case s.kind == uint8(MOV) && t.kind == kMovMov:
				s.kind = kMov3
				s.rd2, s.rs3 = t.rd, t.rs1
				s.rs2, s.tag = t.rd2, t.rs3
				s.n += t.n
				i++
			}
		}
		out = append(out, u)
	}
	return out
}

// fuseEdgeUnits collapses the hottest guard-adjacent shapes. The srli half
// of kEdgeSrliBnei belongs to the same element as its edge, so its write
// has always happened when a side exit charges that element's full body.
// The and half of kEdgeBneiAnd belongs to the *next* element and executes
// only after the guard passes — a side exit leaves it to the per-block
// path — which is only sound when no delay-slot steps sit between the
// edge and the next body (slots run before the next element's body).
func fuseEdgeUnits(units []sbUnit, elided []uint16, res *sbOptResult) []sbUnit {
	out := units[:0]
	for i := 0; i < len(units); i++ {
		u := units[i]
		s := &u.s
		if i+1 < len(units) {
			t := &units[i+1].s
			switch {
			case s.kind == uint8(SRLI) && !u.slot &&
				t.kind == kEdgeOp0+uint8(BNEI-BEQ) &&
				units[i+1].elem == u.elem && t.rs1 == s.rd:
				u.s = tstep{
					kind: kEdgeSrliBnei, n: s.n + t.n,
					rd: s.rd, rs1: s.rs1, imm: s.imm,
					imm2: t.imm, rd2: t.rd2, rs3: t.rs3, off: t.off,
				}
				u.elem = units[i+1].elem
				i++
			case s.kind == kEdgeOp0+uint8(BNEI-BEQ) &&
				t.kind == uint8(AND) && !units[i+1].slot &&
				units[i+1].elem == u.elem+1:
				u.s = tstep{
					kind: kEdgeBneiAnd, n: s.n + t.n,
					rs1: s.rs1, imm: s.imm, rd2: s.rd2, rs3: s.rs3,
					rd: t.rd, tag: t.rs1, rs2: t.rs2, off: s.off,
				}
				i++
			}
		}
		out = append(out, u)
	}
	return out
}

// foldJrSlots reapplies the jr+ADDI return fold: a kEdgeJr edge whose
// element's only delay-slot step is a single ADDI absorbs it, exactly as
// the original formation did (the ADDI runs only once the guard has
// passed, and cannot fault).
func foldJrSlots(units []sbUnit) []sbUnit {
	out := units[:0]
	for i := 0; i < len(units); i++ {
		u := units[i]
		if u.s.kind == kEdgeJr && i+1 < len(units) {
			sl := &units[i+1]
			last := i+2 >= len(units) || !units[i+2].slot || units[i+2].elem != u.elem
			if sl.slot && sl.elem == u.elem && sl.s.kind == uint8(ADDI) && last {
				u.s.kind = kEdgeJrA
				u.s.rd, u.s.rs2, u.s.imm2 = sl.s.rd, sl.s.rs1, sl.s.imm
				u.s.n += sl.s.n
				i++
			}
		}
		out = append(out, u)
	}
	return out
}
