package mipsx

import (
	"fmt"
	"sort"
	"strings"
)

var regNames = map[uint8]string{
	RZero: "zero", RNil: "nil", RMask: "mask", RHLim: "hlim", RHP: "hp",
	RSP: "sp", RRA: "ra",
}

func regName(r uint8) string {
	if n, ok := regNames[r]; ok {
		return n
	}
	return fmt.Sprintf("r%d", r)
}

// Disasm renders one instruction. labels, if non-nil, maps instruction
// indices back to label names for branch targets.
func Disasm(in *Instr, labels map[int]string) string {
	target := func() string {
		if labels != nil {
			if n, ok := labels[in.Target]; ok {
				return n
			}
		}
		return fmt.Sprintf("@%d", in.Target)
	}
	var body string
	switch in.Op {
	case NOP, HALT:
		body = in.Op.String()
	case MOV:
		body = fmt.Sprintf("mov %s, %s", regName(in.Rd), regName(in.Rs1))
	case LI:
		body = fmt.Sprintf("li %s, %d", regName(in.Rd), in.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI:
		body = fmt.Sprintf("%s %s, %s, %d", in.Op, regName(in.Rd), regName(in.Rs1), in.Imm)
	case ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL, DIV, REM, ADDTC, SUBTC,
		FADD, FSUB, FMUL, FDIV, FLT, FEQ:
		body = fmt.Sprintf("%s %s, %s, %s", in.Op, regName(in.Rd), regName(in.Rs1), regName(in.Rs2))
	case LD, LDT:
		body = fmt.Sprintf("%s %s, %d(%s)", in.Op, regName(in.Rd), in.Imm, regName(in.Rs1))
	case LDC:
		body = fmt.Sprintf("ldc %s, %d(%s) tag=%d", regName(in.Rd), in.Imm, regName(in.Rs1), in.Tag)
	case ST, STT:
		body = fmt.Sprintf("%s %s, %d(%s)", in.Op, regName(in.Rs2), in.Imm, regName(in.Rs1))
	case STC:
		body = fmt.Sprintf("stc %s, %d(%s) tag=%d", regName(in.Rs2), in.Imm, regName(in.Rs1), in.Tag)
	case BEQ, BNE, BLT, BGE, BLE, BGT:
		body = fmt.Sprintf("%s %s, %s, %s", in.Op, regName(in.Rs1), regName(in.Rs2), target())
	case BEQI, BNEI, BLTI, BGEI:
		body = fmt.Sprintf("%s %s, %d, %s", in.Op, regName(in.Rs1), in.Imm, target())
	case ITOF, FTOI:
		body = fmt.Sprintf("%s %s, %s", in.Op, regName(in.Rd), regName(in.Rs1))
	case BTEQ, BTNE:
		body = fmt.Sprintf("%s %s, tag=%d, %s", in.Op, regName(in.Rs1), in.Tag, target())
	case JMP, JAL:
		body = fmt.Sprintf("%s %s", in.Op, target())
	case JALR, JR:
		body = fmt.Sprintf("%s %s", in.Op, regName(in.Rs1))
	case SYS:
		body = fmt.Sprintf("sys %d", in.Imm)
	case LABEL:
		body = fmt.Sprintf("label @%d", in.Target)
	default:
		body = in.Op.String()
	}
	if in.Squash {
		body += " [sq]"
	}
	if in.Cat != CatWork {
		body += "  ; " + in.Cat.String()
		if in.Sub != SubNone {
			body += "/" + in.Sub.String()
		}
		if in.RTCheck {
			body += " rt"
		}
	}
	return body
}

// DisasmProgram renders the whole program with label names and indices.
func DisasmProgram(p *Program) string {
	byIndex := make(map[int]string, len(p.Labels))
	for name, idx := range p.Labels {
		if prev, ok := byIndex[idx]; !ok || name < prev {
			byIndex[idx] = name
		}
	}
	var sb strings.Builder
	names := make([]string, 0)
	for i := range p.Instrs {
		names = names[:0]
		for name, idx := range p.Labels {
			if idx == i {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, "%s:\n", n)
		}
		fmt.Fprintf(&sb, "%6d  %s\n", i, Disasm(&p.Instrs[i], byIndex))
	}
	return sb.String()
}
